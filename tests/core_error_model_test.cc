#include "core/error_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pldp {
namespace {

TEST(CEpsilonTest, KnownValues) {
  // c_eps = (e^eps + 1) / (e^eps - 1).
  EXPECT_NEAR(CEpsilon(1.0), (std::exp(1.0) + 1) / (std::exp(1.0) - 1), 1e-12);
  EXPECT_NEAR(CEpsilon(1.0), 2.16395, 1e-4);
  EXPECT_NEAR(CEpsilon(0.5), 4.08307, 1e-4);
}

TEST(CEpsilonTest, MonotoneDecreasingInEpsilon) {
  double prev = CEpsilon(0.05);
  for (double eps = 0.1; eps <= 5.0; eps += 0.1) {
    const double cur = CEpsilon(eps);
    EXPECT_LT(cur, prev) << "eps " << eps;
    prev = cur;
  }
}

TEST(CEpsilonTest, ApproachesOneForLargeEpsilon) {
  EXPECT_NEAR(CEpsilon(20.0), 1.0, 1e-8);
}

TEST(CEpsilonTest, DivergesForSmallEpsilon) {
  // c_eps ~ 2/eps as eps -> 0.
  EXPECT_NEAR(CEpsilon(1e-4) * 1e-4, 2.0, 1e-3);
}

TEST(PrivacyFactorTest, IsSquareOfC) {
  const double c = CEpsilon(0.75);
  EXPECT_DOUBLE_EQ(PrivacyFactorTerm(0.75), c * c);
}

TEST(PcepErrorBoundTest, MatchesClosedForm) {
  const double beta = 0.1, n = 1000, d = 20;
  const double varsigma = n * PrivacyFactorTerm(1.0);
  const double expected = std::sqrt(2 * varsigma * std::log(4 * d / beta)) +
                          std::sqrt(n * std::log(2 * d / beta));
  EXPECT_NEAR(PcepErrorBound(beta, n, d, varsigma), expected, 1e-9);
}

TEST(PcepErrorBoundTest, ZeroUsersZeroError) {
  EXPECT_DOUBLE_EQ(PcepErrorBound(0.1, 0, 10, 0), 0.0);
}

TEST(PcepErrorBoundTest, MonotoneInRegionSizeAndUsers) {
  const double varsigma = 100 * PrivacyFactorTerm(1.0);
  EXPECT_LT(PcepErrorBound(0.1, 100, 10, varsigma),
            PcepErrorBound(0.1, 100, 100, varsigma));
  EXPECT_LT(PcepErrorBound(0.1, 100, 10, varsigma),
            PcepErrorBound(0.1, 400, 10, 4 * varsigma));
}

TEST(PcepErrorBoundTest, TighterConfidenceCostsMore) {
  const double varsigma = 100 * PrivacyFactorTerm(1.0);
  EXPECT_LT(PcepErrorBound(0.2, 100, 10, varsigma),
            PcepErrorBound(0.01, 100, 10, varsigma));
}

// Example 4.1 of the paper: merging the groups at R4 and R14 lowers the MAE
// bound. The paper's printed numbers (4637 vs 3327) use a slightly different
// constant than Theorem 4.5's statement (both are ours x 1.2012); the
// *ratio*, which is the actual claim, matches to three decimals.
TEST(PcepErrorBoundTest, Example41MergingWins) {
  const double beta = 0.2;
  const double vs4 = 60000 * PrivacyFactorTerm(1.0);
  const double vs14 = 20000 * PrivacyFactorTerm(1.0);
  // Separate protocols at confidence beta/2 each; errors add at any block
  // under R14.
  const double separate = PcepErrorBound(beta / 2, 60000, 20, vs4) +
                          PcepErrorBound(beta / 2, 20000, 6, vs14);
  // Merged: R14 absorbed into R4, region size 20.
  const double merged = PcepErrorBound(beta, 80000, 20, vs4 + vs14);
  EXPECT_LT(merged, separate);
  EXPECT_NEAR(separate / merged, 4637.0 / 3327.0, 5e-3);
}

TEST(PcepErrorBoundDeathTest, RejectsBadInputs) {
  EXPECT_DEATH(PcepErrorBound(0.0, 10, 10, 1), "beta");
  EXPECT_DEATH(PcepErrorBound(1.0, 10, 10, 1), "beta");
  EXPECT_DEATH(PcepErrorBound(0.1, 10, 0, 1), "region");
  EXPECT_DEATH(CEpsilon(0.0), "epsilon");
  EXPECT_DEATH(CEpsilon(-1.0), "epsilon");
}

}  // namespace
}  // namespace pldp
