// Degradation report: estimation error vs. injected dropout, swept over
// seeded replicates and emitted as CSV.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/spec_assignment.h"
#include "data/synthetic.h"
#include "eval/degradation.h"
#include "util/csv.h"
#include "util/random.h"

namespace pldp {
namespace {

struct Workload {
  UniformGrid grid;
  SpatialTaxonomy taxonomy;
  std::vector<UserRecord> users;
};

Workload MakeWorkload(size_t n, uint64_t seed) {
  UniformGrid grid = UniformGrid::Create(BoundingBox{0, 0, 8, 8}, 1, 1).value();
  SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();
  Rng rng(seed);
  std::vector<CellId> cells;
  cells.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    cells.push_back(static_cast<CellId>(rng.NextUint64(grid.num_cells())));
  }
  std::vector<UserRecord> users =
      AssignSpecs(taxonomy, cells, SafeRegionsS2(), EpsilonsE2(), seed)
          .value();
  return Workload{std::move(grid), std::move(taxonomy), std::move(users)};
}

TEST(UniformDropoutGridTest, CoversZeroToMaxInclusive) {
  const std::vector<double> rates = UniformDropoutGrid(0.5, 10);
  ASSERT_EQ(rates.size(), 11u);
  EXPECT_DOUBLE_EQ(rates.front(), 0.0);
  EXPECT_DOUBLE_EQ(rates.back(), 0.5);
  EXPECT_DOUBLE_EQ(rates[5], 0.25);
  EXPECT_EQ(UniformDropoutGrid(0.3, 0).size(), 2u);  // steps clamped to 1
}

TEST(DegradationSweepTest, RejectsBadInput) {
  const Workload w = MakeWorkload(100, 1);
  DegradationOptions options;
  EXPECT_FALSE(RunDegradationSweep(w.taxonomy, {}, options).ok());
  options.dropout_rates = {1.5};
  EXPECT_FALSE(RunDegradationSweep(w.taxonomy, w.users, options).ok());
}

// Acceptance: at 20% injected dropout the sweep completes without error and
// the rescaled estimate's mean relative error stays within 2x of the
// no-fault replicates, over 5 seeds.
TEST(DegradationSweepTest, TwentyPercentDropoutStaysWithinTwiceNoFaultError) {
  const Workload w = MakeWorkload(3000, 2016);
  DegradationOptions options;
  options.dropout_rates = {0.0, 0.2};
  options.runs_per_rate = 5;
  options.seed = 77;
  const std::vector<DegradationPoint> points =
      RunDegradationSweep(w.taxonomy, w.users, options).value();
  ASSERT_EQ(points.size(), 10u);

  double clean = 0.0, faulty = 0.0;
  for (const DegradationPoint& p : points) {
    EXPECT_TRUE(std::isfinite(p.mean_abs_error));
    if (p.dropout_rate == 0.0) {
      clean += p.mean_rel_error;
      EXPECT_EQ(p.dropped_clients, 0u);
      EXPECT_EQ(p.retries, 0u);
      EXPECT_DOUBLE_EQ(p.response_rate, 1.0);
    } else {
      faulty += p.mean_rel_error;
      EXPECT_GT(p.retries, 0u);
      EXPECT_GT(p.response_rate, 0.9);  // retries recover most of the 20%
    }
  }
  EXPECT_LE(faulty, 2.0 * clean) << "clean " << clean / 5 << " vs faulty "
                                 << faulty / 5;
}

TEST(DegradationSweepTest, ReplicatesAreDeterministic) {
  const Workload w = MakeWorkload(500, 9);
  DegradationOptions options;
  options.dropout_rates = {0.3};
  options.runs_per_rate = 2;
  options.seed = 123;
  const auto a = RunDegradationSweep(w.taxonomy, w.users, options).value();
  const auto b = RunDegradationSweep(w.taxonomy, w.users, options).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean_abs_error, b[i].mean_abs_error);
    EXPECT_EQ(a[i].dropped_clients, b[i].dropped_clients);
    EXPECT_EQ(a[i].retries, b[i].retries);
    EXPECT_DOUBLE_EQ(a[i].total_estimate, b[i].total_estimate);
  }
}

TEST(DegradationSweepTest, SyntheticDatasetSweepWritesCsv) {
  const Dataset dataset = GenerateByName("storage", 0.5, 4).value();
  const UniformGrid grid = dataset.MakeGrid().value();
  const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();
  const std::vector<CellId> cells = dataset.ToCells(grid);
  const std::vector<UserRecord> users =
      AssignSpecs(taxonomy, cells, SafeRegionsS2(), EpsilonsE2(), 11).value();

  DegradationOptions options;
  options.dropout_rates = UniformDropoutGrid(0.4, 2);
  options.runs_per_rate = 2;
  const std::vector<DegradationPoint> points =
      RunDegradationSweep(taxonomy, users, options).value();
  ASSERT_EQ(points.size(), 6u);

  const std::string path = ::testing::TempDir() + "/pldp_degradation.csv";
  ASSERT_TRUE(WriteDegradationCsv(path, points).ok());
  const auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("dropout_rate"), std::string::npos);
  EXPECT_NE(contents->find("response_rate"), std::string::npos);
  // Header + one line per point.
  size_t lines = 0;
  for (const char c : *contents) lines += c == '\n';
  EXPECT_EQ(lines, 7u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pldp
