#include "data/stats.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace pldp {
namespace {

Dataset UniformDataset(size_t per_cell) {
  Dataset dataset;
  dataset.name = "uniform";
  dataset.domain = BoundingBox{0, 0, 4, 4};
  dataset.cell_width = 1.0;
  dataset.cell_height = 1.0;
  for (uint32_t r = 0; r < 4; ++r) {
    for (uint32_t c = 0; c < 4; ++c) {
      for (size_t i = 0; i < per_cell; ++i) {
        dataset.points.push_back(
            GeoPoint{c + 0.5, r + 0.5});
      }
    }
  }
  return dataset;
}

TEST(DatasetStatsTest, RejectsEmpty) {
  Dataset empty;
  empty.domain = BoundingBox{0, 0, 1, 1};
  EXPECT_FALSE(ComputeDatasetStats(empty).ok());
}

TEST(DatasetStatsTest, UniformDataHasZeroGini) {
  const DatasetStats stats =
      ComputeDatasetStats(UniformDataset(10)).value();
  EXPECT_EQ(stats.num_users, 160u);
  EXPECT_EQ(stats.populated_cells, 16u);
  EXPECT_NEAR(stats.gini, 0.0, 1e-9);
  EXPECT_NEAR(stats.top10pct_mass, 1.0 / 16.0, 1e-9);  // 1 cell of 16
  EXPECT_DOUBLE_EQ(stats.max_cell_count, 10.0);
}

TEST(DatasetStatsTest, PointMassHasMaximalGini) {
  Dataset dataset;
  dataset.name = "point";
  dataset.domain = BoundingBox{0, 0, 4, 4};
  for (int i = 0; i < 100; ++i) dataset.points.push_back(GeoPoint{0.5, 0.5});
  const DatasetStats stats = ComputeDatasetStats(dataset).value();
  EXPECT_EQ(stats.populated_cells, 1u);
  EXPECT_NEAR(stats.gini, 15.0 / 16.0, 1e-9);  // (N-1)/N for one hot cell
  EXPECT_NEAR(stats.top1pct_mass, 1.0, 1e-9);
}

TEST(DatasetStatsTest, SyntheticAnalogsAreHeavilySkewed) {
  // The property the substitution argument leans on: the analogs must be
  // strongly concentrated, like the real datasets.
  for (const std::string& name : BenchmarkDatasetNames()) {
    const Dataset dataset = GenerateByName(name, 0.02, 5).value();
    const DatasetStats stats = ComputeDatasetStats(dataset).value();
    EXPECT_GT(stats.gini, 0.8) << name;
    EXPECT_GT(stats.top10pct_mass, 0.6) << name;
    EXPECT_LT(stats.populated_cells, stats.num_cells) << name;
  }
}

TEST(DatasetStatsTest, FormatContainsKeyNumbers) {
  const DatasetStats stats =
      ComputeDatasetStats(UniformDataset(5)).value();
  const std::string line = FormatDatasetStats("uniform", stats);
  EXPECT_NE(line.find("uniform"), std::string::npos);
  EXPECT_NE(line.find("80 users"), std::string::npos);
  EXPECT_NE(line.find("16/16"), std::string::npos);
}

}  // namespace
}  // namespace pldp
