#include "obs/json_reader.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/json_writer.h"

namespace pldp {
namespace obs {
namespace {

TEST(JsonReaderTest, ParsesPrimitives) {
  EXPECT_TRUE(ParseJson("null").value().is_null());
  EXPECT_TRUE(ParseJson("true").value().bool_value());
  EXPECT_FALSE(ParseJson("false").value().bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("42").value().number_value(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-1.5e3").value().number_value(), -1500.0);
  EXPECT_EQ(ParseJson("\"hi\"").value().string_value(), "hi");
  EXPECT_TRUE(ParseJson("  [ ]\n").value().array_items().empty());
  EXPECT_TRUE(ParseJson("{}").value().object_members().empty());
}

TEST(JsonReaderTest, ParsesNestedDocument) {
  const auto parsed = ParseJson(
      R"({"schema":"pldp.bench/1","cases":[{"name":"a","median_s":0.25},)"
      R"({"name":"b","median_s":0.5}],"manifest":{"git_revision":"abc"}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& root = parsed.value();
  EXPECT_EQ(root.StringOr("schema", ""), "pldp.bench/1");
  const JsonValue* cases = root.Find("cases");
  ASSERT_NE(cases, nullptr);
  ASSERT_EQ(cases->array_items().size(), 2u);
  EXPECT_EQ(cases->array_items()[0].StringOr("name", ""), "a");
  EXPECT_DOUBLE_EQ(cases->array_items()[1].NumberOr("median_s", 0.0), 0.5);
  const JsonValue* manifest = root.Find("manifest");
  ASSERT_NE(manifest, nullptr);
  EXPECT_EQ(manifest->StringOr("git_revision", "?"), "abc");
}

TEST(JsonReaderTest, AccessorsReturnFallbacksOnTypeMismatch) {
  const JsonValue root = ParseJson(R"({"s":"x","n":3})").value();
  // Wrong-typed members fall back instead of aborting.
  EXPECT_DOUBLE_EQ(root.NumberOr("s", -1.0), -1.0);
  EXPECT_EQ(root.StringOr("n", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(root.NumberOr("missing", 7.0), 7.0);
  EXPECT_EQ(root.Find("missing"), nullptr);
  // Non-object Find is a nullptr, not a crash.
  EXPECT_EQ(ParseJson("[1]").value().Find("x"), nullptr);
  // Accessors on a mismatched type give natural zeros.
  const JsonValue number = ParseJson("5").value();
  EXPECT_TRUE(number.string_value().empty());
  EXPECT_TRUE(number.array_items().empty());
  EXPECT_TRUE(number.object_members().empty());
}

TEST(JsonReaderTest, DecodesEscapes) {
  const JsonValue value =
      ParseJson(R"("a\"b\\c\/d\b\f\n\r\te")").value();
  EXPECT_EQ(value.string_value(), "a\"b\\c/d\b\f\n\r\te");
  // BMP escape.
  EXPECT_EQ(ParseJson("\"\\u0041\"").value().string_value(), "A");
  // Two-byte and three-byte UTF-8 from \u escapes.
  EXPECT_EQ(ParseJson("\"\\u00e9\"").value().string_value(), "\xc3\xa9");
  EXPECT_EQ(ParseJson("\"\\u20ac\"").value().string_value(),
            "\xe2\x82\xac");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(ParseJson("\"\\ud83d\\ude00\"").value().string_value(),
            "\xf0\x9f\x98\x80");
  // An unpaired high surrogate degrades to U+FFFD instead of failing.
  EXPECT_EQ(ParseJson(R"("\ud83dx")").value().string_value(),
            "\xef\xbf\xbdx");
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1 2").ok()) << "trailing tokens must fail";
  EXPECT_FALSE(ParseJson("\"bad \\x escape\"").ok());
  // Error messages carry a byte offset for debugging history lines.
  const auto bad = ParseJson("[1, }");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("byte"), std::string::npos)
      << bad.status().message();
}

TEST(JsonReaderTest, EnforcesDepthLimit) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string shallow = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_TRUE(ParseJson(shallow).ok());
}

TEST(JsonReaderTest, RoundTripsJsonWriterOutput) {
  std::ostringstream out;
  JsonWriter writer(&out);
  writer.BeginObject();
  writer.Field("name", "bench \"quoted\"\n");
  writer.Field("value", 0.125);
  writer.Field("count", uint64_t{7});
  // JsonWriter spells non-finite doubles as null.
  writer.Field("bad", std::nan(""));
  writer.Key("items");
  writer.BeginArray();
  writer.Number(1.0);
  writer.Number(2.0);
  writer.EndArray();
  writer.EndObject();

  const auto parsed = ParseJson(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& root = parsed.value();
  EXPECT_EQ(root.StringOr("name", ""), "bench \"quoted\"\n");
  EXPECT_DOUBLE_EQ(root.NumberOr("value", 0.0), 0.125);
  EXPECT_DOUBLE_EQ(root.NumberOr("count", 0.0), 7.0);
  ASSERT_NE(root.Find("bad"), nullptr);
  EXPECT_TRUE(root.Find("bad")->is_null());
  ASSERT_EQ(root.Find("items")->array_items().size(), 2u);
}

TEST(JsonReaderTest, ObjectMembersKeepDocumentOrder) {
  const JsonValue root = ParseJson(R"({"z":1,"a":2,"m":3})").value();
  const auto& members = root.object_members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

}  // namespace
}  // namespace obs
}  // namespace pldp
