// Equivalence check: the optimized cluster-forest implementation of
// Algorithm 3 must produce exactly the same merge decisions as a
// straightforward O(k^2)-per-pair reference implementation, across many
// randomized group configurations.

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/clustering.h"
#include "core/error_model.h"
#include "geo/taxonomy.h"
#include "util/random.h"

namespace pldp {
namespace {

double RefClusterError(const SpatialTaxonomy& taxonomy, const Cluster& cluster,
                       double beta_each) {
  (void)taxonomy;
  return PcepErrorBound(beta_each, static_cast<double>(cluster.n),
                        static_cast<double>(cluster.region_size),
                        cluster.varsigma);
}

/// Literal transcription of Algorithm 3: paths are represented by every
/// cluster as a base, path membership is decided by top-region containment,
/// and every comparable pair is evaluated with a full O(paths) sweep.
ClusteringResult ReferenceCluster(const SpatialTaxonomy& taxonomy,
                                  const std::vector<UserGroup>& groups,
                                  double beta) {
  ClusteringResult result =
      TrivialClusters(taxonomy, groups, ClusteringOptions{beta}).value();
  std::vector<Cluster>& clusters = result.clusters;
  const size_t k = clusters.size();
  if (k <= 1) return result;

  std::vector<bool> alive(k, true);
  size_t num_alive = k;
  double lmax = result.initial_max_path_error;

  while (num_alive > 1) {
    const double beta_each = beta / static_cast<double>(num_alive - 1);
    std::vector<double> errors(k, 0.0), path_errors(k, 0.0);
    for (size_t c = 0; c < k; ++c) {
      if (alive[c]) {
        errors[c] = RefClusterError(taxonomy, clusters[c], beta_each);
      }
    }
    for (size_t base = 0; base < k; ++base) {
      if (!alive[base]) continue;
      for (size_t c = 0; c < k; ++c) {
        if (alive[c] && taxonomy.Contains(clusters[c].top_region,
                                          clusters[base].top_region)) {
          path_errors[base] += errors[c];
        }
      }
    }

    double best = std::numeric_limits<double>::infinity();
    size_t best_outer = k, best_inner = k;
    for (size_t outer = 0; outer < k; ++outer) {
      if (!alive[outer]) continue;
      for (size_t inner = 0; inner < k; ++inner) {
        if (!alive[inner] || inner == outer) continue;
        if (!taxonomy.Contains(clusters[outer].top_region,
                               clusters[inner].top_region)) {
          continue;
        }
        Cluster merged;
        merged.top_region = clusters[outer].top_region;
        merged.n = clusters[outer].n + clusters[inner].n;
        merged.region_size = clusters[outer].region_size;
        merged.varsigma = clusters[outer].varsigma + clusters[inner].varsigma;
        const double merged_error =
            RefClusterError(taxonomy, merged, beta_each);

        double worst = 0.0;
        for (size_t p = 0; p < k; ++p) {
          if (!alive[p]) continue;
          double err = path_errors[p];
          if (taxonomy.Contains(clusters[outer].top_region,
                                clusters[p].top_region)) {
            err += merged_error - errors[outer];
          }
          if (taxonomy.Contains(clusters[inner].top_region,
                                clusters[p].top_region)) {
            err -= errors[inner];
          }
          worst = std::max(worst, err);
        }
        if (worst < best) {
          best = worst;
          best_outer = outer;
          best_inner = inner;
        }
      }
    }
    if (best_outer == k || best >= lmax) break;
    clusters[best_outer].groups.insert(clusters[best_outer].groups.end(),
                                       clusters[best_inner].groups.begin(),
                                       clusters[best_inner].groups.end());
    clusters[best_outer].n += clusters[best_inner].n;
    clusters[best_outer].varsigma += clusters[best_inner].varsigma;
    alive[best_inner] = false;
    --num_alive;
    ++result.merges;
    lmax = best;
  }

  std::vector<Cluster> survivors;
  for (size_t c = 0; c < k; ++c) {
    if (alive[c]) survivors.push_back(clusters[c]);
  }
  result.clusters = std::move(survivors);
  result.final_max_path_error = MaxPathError(taxonomy, result.clusters, beta);
  return result;
}

std::vector<UserGroup> RandomGroups(const SpatialTaxonomy& taxonomy,
                                    size_t count, Rng* rng) {
  std::vector<UserGroup> groups;
  std::set<NodeId> used;
  while (groups.size() < count) {
    const auto node =
        static_cast<NodeId>(rng->NextUint64(taxonomy.num_nodes()));
    if (!used.insert(node).second) continue;
    UserGroup group;
    group.region = node;
    group.members.resize(1 + rng->NextUint64(30000));
    const double eps = 0.25 + 0.25 * rng->NextUint64(5);
    group.varsigma =
        static_cast<double>(group.members.size()) * PrivacyFactorTerm(eps);
    groups.push_back(std::move(group));
  }
  return groups;
}

/// Canonical form for comparing clusterings: sorted group sets per cluster.
std::set<std::vector<uint32_t>> Canonical(const ClusteringResult& result) {
  std::set<std::vector<uint32_t>> canonical;
  for (const Cluster& cluster : result.clusters) {
    std::vector<uint32_t> groups = cluster.groups;
    std::sort(groups.begin(), groups.end());
    canonical.insert(std::move(groups));
  }
  return canonical;
}

class ClusteringEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusteringEquivalenceTest, OptimizedMatchesReference) {
  const int scenario = GetParam();
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, 16, 16}, 1, 1).value();
  const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();
  Rng rng(1000 + scenario);
  const size_t count = 2 + rng.NextUint64(24);
  const std::vector<UserGroup> groups = RandomGroups(taxonomy, count, &rng);
  const double beta = 0.1;

  const ClusteringResult reference = ReferenceCluster(taxonomy, groups, beta);
  const ClusteringResult optimized =
      ClusterUserGroups(taxonomy, groups, ClusteringOptions{beta}).value();

  EXPECT_EQ(optimized.merges, reference.merges) << "scenario " << scenario;
  EXPECT_EQ(Canonical(optimized), Canonical(reference))
      << "scenario " << scenario;
  EXPECT_NEAR(optimized.final_max_path_error,
              reference.final_max_path_error,
              1e-6 * (1.0 + reference.final_max_path_error))
      << "scenario " << scenario;
}

INSTANTIATE_TEST_SUITE_P(RandomConfigurations, ClusteringEquivalenceTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace pldp
