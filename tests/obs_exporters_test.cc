#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/chrome_trace.h"
#include "obs/json_reader.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

namespace pldp {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Prometheus text exposition format (version 0.0.4) schema checks.
// ---------------------------------------------------------------------------

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  const auto valid_first = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!valid_first(name[0])) return false;
  for (const char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':'))
      return false;
  }
  return true;
}

struct PromSample {
  std::string name;   // series name, without labels
  std::string labels; // raw label block including braces, may be empty
  std::string value;
};

/// Minimal line-oriented reader of the text format; fails the test on any
/// line that is neither a comment nor "name[{labels}] value".
struct PromExposition {
  std::map<std::string, std::string> family_type;  // name -> counter/gauge/...
  std::vector<PromSample> samples;
  std::vector<std::string> family_order;  // TYPE headers in document order
};

void ParsePromText(const std::string& text, PromExposition* out) {
  PromExposition& result = *out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      std::istringstream header(line);
      std::string hash, keyword, family, type;
      header >> hash >> keyword >> family >> type;
      ASSERT_EQ(keyword, "TYPE") << line;
      ASSERT_TRUE(result.family_type.emplace(family, type).second)
          << "duplicate TYPE for " << family;
      result.family_order.push_back(family);
      continue;
    }
    PromSample sample;
    const size_t brace = line.find('{');
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    if (brace != std::string::npos && brace < space) {
      sample.name = line.substr(0, brace);
      const size_t close = line.find('}', brace);
      ASSERT_NE(close, std::string::npos) << line;
      sample.labels = line.substr(brace, close - brace + 1);
    } else {
      sample.name = line.substr(0, space);
    }
    sample.value = line.substr(space + 1);
    result.samples.push_back(std::move(sample));
  }
}

/// The family a sample belongs to: histogram samples drop their
/// _bucket/_sum/_count suffix.
std::string FamilyOf(const PromExposition& exposition,
                     const std::string& sample_name) {
  if (exposition.family_type.count(sample_name) > 0) return sample_name;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (sample_name.size() > s.size() &&
        sample_name.compare(sample_name.size() - s.size(), s.size(), s) == 0) {
      const std::string family =
          sample_name.substr(0, sample_name.size() - s.size());
      if (exposition.family_type.count(family) > 0) return family;
    }
  }
  return "";
}

MetricsSnapshot MakeSnapshot() {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.GetCounter("pcep.reports")->Increment(5);
  registry.GetGauge("accuracy.kl")->Set(0.25);
  registry.GetGauge("psda.rescale-factor")->Set(1.5);  // '-' must sanitize
  Histogram* histogram =
      registry.GetHistogram("pcep.encode_ms", {1.0, 10.0, 100.0});
  histogram->Observe(0.5);
  histogram->Observe(5.0);
  histogram->Observe(50.0);
  histogram->Observe(500.0);
  registry.GetHistogram("pcep.empty_ms", {1.0});  // no observations
  return registry.Snapshot();
}

TEST(PrometheusTest, MetricNameSanitization) {
  EXPECT_EQ(PrometheusMetricName("pcep.reports"), "pldp_pcep_reports");
  EXPECT_EQ(PrometheusMetricName("a-b c"), "pldp_a_b_c");
  EXPECT_EQ(PrometheusMetricName("ok_name:x"), "pldp_ok_name:x");
}

TEST(PrometheusTest, EverySampleHasValidNameAndDeclaredType) {
  const std::string text = MetricsToPrometheusText(MakeSnapshot());
  PromExposition exposition;
  {
    SCOPED_TRACE(text);
    ParsePromText(text, &exposition);
  }
  ASSERT_FALSE(exposition.samples.empty());
  std::map<std::string, size_t> first_sample_of_family;
  for (size_t i = 0; i < exposition.samples.size(); ++i) {
    const PromSample& sample = exposition.samples[i];
    EXPECT_TRUE(IsValidMetricName(sample.name)) << sample.name;
    const std::string family = FamilyOf(exposition, sample.name);
    ASSERT_FALSE(family.empty()) << "no TYPE header for " << sample.name;
    first_sample_of_family.emplace(family, i);
  }
  // TYPE headers precede their samples: families appear in header order and
  // every family had a header before its first sample (guaranteed above by
  // FamilyOf finding it in family_type, which is built line by line only if
  // the header came first in the same pass).
  for (const auto& [family, index] : first_sample_of_family) {
    (void)index;
    EXPECT_EQ(exposition.family_type.count(family), 1u);
  }
}

TEST(PrometheusTest, CounterFamilyEndsInTotal) {
  PromExposition exposition;
  ParsePromText(MetricsToPrometheusText(MakeSnapshot()), &exposition);
  ASSERT_EQ(exposition.family_type.at("pldp_pcep_reports_total"), "counter");
  bool found = false;
  for (const PromSample& sample : exposition.samples) {
    if (sample.name == "pldp_pcep_reports_total") {
      found = true;
      EXPECT_EQ(sample.value, "5");
    }
  }
  EXPECT_TRUE(found);
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeWithInf) {
  PromExposition exposition;
  ParsePromText(MetricsToPrometheusText(MakeSnapshot()), &exposition);
  ASSERT_EQ(exposition.family_type.at("pldp_pcep_encode_ms"), "histogram");
  std::vector<double> bucket_values;
  std::string inf_value, count_value;
  for (const PromSample& sample : exposition.samples) {
    if (sample.name == "pldp_pcep_encode_ms_bucket") {
      EXPECT_NE(sample.labels.find("le=\""), std::string::npos)
          << sample.labels;
      bucket_values.push_back(std::stod(sample.value));
      if (sample.labels.find("+Inf") != std::string::npos)
        inf_value = sample.value;
    }
    if (sample.name == "pldp_pcep_encode_ms_count") count_value = sample.value;
  }
  // 3 finite bounds + the +Inf bucket, cumulative and ending at count.
  ASSERT_EQ(bucket_values.size(), 4u);
  for (size_t i = 1; i < bucket_values.size(); ++i) {
    EXPECT_GE(bucket_values[i], bucket_values[i - 1]);
  }
  EXPECT_EQ(inf_value, "4");
  EXPECT_EQ(count_value, "4");
}

TEST(PrometheusTest, QuantileGaugesEmittedAndEmptyHistogramIsNaN) {
  PromExposition exposition;
  ParsePromText(MetricsToPrometheusText(MakeSnapshot()), &exposition);
  ASSERT_EQ(
      exposition.family_type.at("pldp_pcep_encode_ms_approx_quantile"),
      "gauge");
  int quantiles = 0, empty_quantiles = 0;
  for (const PromSample& sample : exposition.samples) {
    if (sample.name == "pldp_pcep_encode_ms_approx_quantile") {
      ++quantiles;
      EXPECT_NE(sample.labels.find("quantile=\""), std::string::npos);
      EXPECT_NE(sample.value, "NaN");
    }
    if (sample.name == "pldp_pcep_empty_ms_approx_quantile") {
      ++empty_quantiles;
      EXPECT_EQ(sample.value, "NaN");
    }
  }
  EXPECT_EQ(quantiles, 4);       // 0.5 / 0.9 / 0.95 / 0.99
  EXPECT_EQ(empty_quantiles, 4);
}

// ---------------------------------------------------------------------------
// Chrome trace_event JSON Object Format schema checks.
// ---------------------------------------------------------------------------

std::vector<SpanRecord> MakeSpans() {
  std::vector<SpanRecord> spans;
  SpanRecord root;
  root.name = "cli.run";
  root.parent = -1;
  root.depth = 0;
  root.thread = 0;
  root.start_ms = 0.0;
  root.duration_ms = 10.0;
  spans.push_back(root);
  SpanRecord child;
  child.name = "pcep.decode";
  child.parent = 0;
  child.depth = 1;
  child.thread = 0;
  child.start_ms = 2.0;
  child.duration_ms = 5.0;
  spans.push_back(child);
  SpanRecord worker;
  worker.name = "pcep.decode.worker";
  worker.parent = 1;
  worker.depth = 2;
  worker.thread = 1;
  worker.start_ms = 3.0;
  worker.duration_ms = 4.0;
  spans.push_back(worker);
  SpanRecord open;
  open.name = "still.open";
  open.parent = -1;
  open.depth = 0;
  open.thread = 1;
  open.start_ms = 8.0;
  open.duration_ms = -1.0;  // open at snapshot time
  spans.push_back(open);
  return spans;
}

JsonValue RenderTrace() {
  std::ostringstream out;
  WriteChromeTraceJson(&out, MakeSpans(), /*dropped_spans=*/3,
                       MakeSnapshot());
  auto parsed = ParseJson(out.str());
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return std::move(parsed).value();
}

TEST(ChromeTraceTest, TopLevelShape) {
  const JsonValue root = RenderTrace();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.StringOr("displayTimeUnit", ""), "ms");
  EXPECT_DOUBLE_EQ(root.NumberOr("pldp_dropped_spans", -1.0), 3.0);
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GE(events->array_items().size(), 4u);
}

TEST(ChromeTraceTest, EventsCarryRequiredFields) {
  const JsonValue root = RenderTrace();
  int complete = 0, begin = 0, counter = 0, metadata = 0;
  for (const JsonValue& event : root.Find("traceEvents")->array_items()) {
    ASSERT_TRUE(event.is_object());
    const std::string ph = event.StringOr("ph", "");
    ASSERT_FALSE(ph.empty());
    ASSERT_NE(event.Find("pid"), nullptr);
    ASSERT_NE(event.Find("tid"), nullptr);
    ASSERT_NE(event.Find("name"), nullptr);
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_NE(event.Find("ts"), nullptr);
    EXPECT_GE(event.NumberOr("ts", -1.0), 0.0);
    if (ph == "X") {
      ++complete;
      EXPECT_GE(event.NumberOr("dur", -1.0), 0.0);
      // Span durations are exported in microseconds.
      if (event.StringOr("name", "") == "cli.run") {
        EXPECT_DOUBLE_EQ(event.NumberOr("dur", 0.0), 10000.0);
      }
    } else if (ph == "B") {
      ++begin;
      EXPECT_EQ(event.Find("dur"), nullptr);
    } else if (ph == "C") {
      ++counter;
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_FALSE(args->object_members().empty());
    } else {
      FAIL() << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(complete, 3);
  EXPECT_EQ(begin, 1);
  // One C event per non-empty histogram (the empty one is skipped: its
  // quantiles are NaN and counter tracks need numbers).
  EXPECT_EQ(counter, 1);
  // process_name + one thread_name per recorded thread.
  EXPECT_EQ(metadata, 3);
}

TEST(ChromeTraceTest, TimestampsMonotonePerThread) {
  const JsonValue root = RenderTrace();
  std::map<double, double> last_ts;  // tid -> last seen ts
  for (const JsonValue& event : root.Find("traceEvents")->array_items()) {
    if (event.StringOr("ph", "") == "M") continue;
    const double tid = event.NumberOr("tid", -1.0);
    const double ts = event.NumberOr("ts", -1.0);
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "ts went backwards on tid " << tid;
    }
    last_ts[tid] = ts;
  }
  EXPECT_GE(last_ts.size(), 2u);
}

}  // namespace
}  // namespace obs
}  // namespace pldp
