#include "eval/attack.h"

#include <gtest/gtest.h>

#include "core/error_model.h"

namespace pldp {
namespace {

std::vector<PcepUser> HonestCohort(int n, int width) {
  std::vector<PcepUser> users;
  users.reserve(n);
  for (int i = 0; i < n; ++i) {
    users.push_back({static_cast<uint32_t>(i % width), 1.0});
  }
  return users;
}

TEST(PollutionAttackTest, RejectsBadConfigs) {
  const auto honest = HonestCohort(100, 8);
  PollutionConfig config;
  config.num_malicious = 10;
  config.target = 8;  // out of range
  EXPECT_FALSE(
      SimulatePcepPollution(honest, 8, config, PcepParams()).ok());
  config.target = 0;
  config.num_malicious = 0;
  EXPECT_FALSE(
      SimulatePcepPollution(honest, 8, config, PcepParams()).ok());
  config.num_malicious = 10;
  config.claimed_epsilon = 0.0;
  EXPECT_FALSE(
      SimulatePcepPollution(honest, 8, config, PcepParams()).ok());
  EXPECT_FALSE(
      SimulatePcepPollution({}, 8, config, PcepParams()).ok());
}

TEST(PollutionAttackTest, FakeLocationInjectsAboutOnePerAttacker) {
  const auto honest = HonestCohort(20000, 8);
  PollutionConfig config;
  config.strategy = PollutionStrategy::kFakeLocation;
  config.num_malicious = 2000;
  config.target = 3;
  config.claimed_epsilon = 1.0;
  const auto outcome =
      SimulatePcepPollution(honest, 8, config, PcepParams()).value();
  EXPECT_GT(outcome.target_attacked, outcome.target_clean);
  EXPECT_NEAR(outcome.amplification_per_attacker, 1.0, 0.5);
}

TEST(PollutionAttackTest, OptimalBiasAmplifiesByCEpsilon) {
  // Deviating attackers inject ~c_eps per report; with a small claimed
  // epsilon (0.1 -> c ~ 20) a 1% coalition dominates the histogram.
  const auto honest = HonestCohort(20000, 8);
  PollutionConfig config;
  config.strategy = PollutionStrategy::kOptimalBias;
  config.num_malicious = 200;
  config.target = 5;
  config.claimed_epsilon = 0.1;
  const auto outcome =
      SimulatePcepPollution(honest, 8, config, PcepParams()).value();
  const double c = CEpsilon(0.1);
  EXPECT_NEAR(outcome.amplification_per_attacker, c, 0.35 * c);
  // 200 attackers * ~20 = ~4000 injected counts on a 2500-count cell.
  EXPECT_GT(outcome.target_attacked, 1.8 * outcome.target_clean);
}

TEST(PollutionAttackTest, LargerClaimedEpsilonWeakensDeviationAttack) {
  const auto honest = HonestCohort(20000, 8);
  PollutionConfig config;
  config.strategy = PollutionStrategy::kOptimalBias;
  config.num_malicious = 500;
  config.target = 2;
  config.claimed_epsilon = 0.1;
  const auto strong =
      SimulatePcepPollution(honest, 8, config, PcepParams()).value();
  config.claimed_epsilon = 4.0;
  const auto weak =
      SimulatePcepPollution(honest, 8, config, PcepParams()).value();
  EXPECT_GT(strong.amplification_per_attacker,
            2.0 * weak.amplification_per_attacker);
}

}  // namespace
}  // namespace pldp
