#include "eval/accuracy.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/psda.h"
#include "geo/taxonomy.h"
#include "obs/metrics.h"
#include "util/random.h"

namespace pldp {
namespace {

SpatialTaxonomy MakeTaxonomy(uint32_t side = 4) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, static_cast<double>(side),
                                      static_cast<double>(side)},
                          1, 1)
          .value();
  return SpatialTaxonomy::Build(grid, 4).value();
}

std::vector<UserRecord> MakeCohort(const SpatialTaxonomy& tax, size_t n,
                                   uint64_t seed) {
  Rng rng(seed);
  const uint32_t cells = tax.grid().num_cells();
  std::vector<UserRecord> users;
  users.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    UserRecord user;
    user.cell = static_cast<CellId>(rng.NextUint64(cells));
    user.spec.safe_region = tax.AncestorAbove(
        tax.LeafNodeOfCell(user.cell),
        static_cast<uint32_t>(rng.NextUint64(tax.height() + 1)));
    user.spec.epsilon = 1.0;
    users.push_back(user);
  }
  return users;
}

std::vector<double> TrueHistogram(const SpatialTaxonomy& tax,
                                  const std::vector<UserRecord>& users) {
  std::vector<double> histogram(tax.grid().num_cells(), 0.0);
  for (const UserRecord& user : users) histogram[user.cell] += 1.0;
  return histogram;
}

TEST(AccuracyTest, PerfectEstimateScoresZero) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  std::vector<double> truth(tax.grid().num_cells(), 0.0);
  truth[0] = 40.0;
  truth[5] = 60.0;
  const auto summary = ComputeAccuracy(tax, truth, truth);
  ASSERT_TRUE(summary.ok()) << summary.status().message();
  EXPECT_DOUBLE_EQ(summary.value().mean_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(summary.value().max_abs_error, 0.0);
  // KlDivergence smooths only the estimate side, so even a perfect estimate
  // carries a small positive divergence; it must still beat a wrong one.
  EXPECT_GE(summary.value().kl_divergence, 0.0);
  std::vector<double> wrong(truth.size(), 0.0);
  wrong[10] = 100.0;
  EXPECT_LT(summary.value().kl_divergence,
            ComputeAccuracy(tax, truth, wrong).value().kl_divergence);
  // Root through leaf level, all exact.
  ASSERT_EQ(summary.value().level_rel_error.size(), tax.height() + 1);
  for (const double level_error : summary.value().level_rel_error) {
    EXPECT_DOUBLE_EQ(level_error, 0.0);
  }
}

TEST(AccuracyTest, RejectsSizeMismatch) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const std::vector<double> truth(tax.grid().num_cells(), 1.0);
  EXPECT_FALSE(ComputeAccuracy(tax, truth, {1.0, 2.0}).ok());
  EXPECT_FALSE(ComputeAccuracy(tax, {1.0}, {1.0}).ok());
}

TEST(AccuracyTest, KnownErrorProducesExpectedLevels) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  std::vector<double> truth(tax.grid().num_cells(), 0.0);
  truth[0] = 100.0;
  std::vector<double> estimate = truth;
  estimate[0] = 50.0;  // off by 50 everywhere it aggregates
  const auto summary = ComputeAccuracy(tax, truth, estimate, /*sanity=*/10.0);
  ASSERT_TRUE(summary.ok());
  EXPECT_DOUBLE_EQ(summary.value().max_abs_error, 50.0);
  EXPECT_DOUBLE_EQ(summary.value().mean_abs_error,
                   50.0 / tax.grid().num_cells());
  // The root holds all the mass, so its relative error is 50/100.
  EXPECT_DOUBLE_EQ(summary.value().level_rel_error[0], 0.5);
  // Every deeper level has exactly one erring node; the level mean shrinks
  // with node count but stays positive.
  for (size_t level = 1; level < summary.value().level_rel_error.size();
       ++level) {
    EXPECT_GT(summary.value().level_rel_error[level], 0.0);
  }
  EXPECT_GT(summary.value().kl_divergence, 0.0);
}

TEST(AccuracyTest, PsdaAccuracyScoresClusters) {
  const SpatialTaxonomy tax = MakeTaxonomy(8);
  const std::vector<UserRecord> users = MakeCohort(tax, 600, 7);
  const std::vector<double> truth = TrueHistogram(tax, users);
  PsdaOptions options;
  options.beta = 0.1;
  options.seed = 11;
  const auto result = RunPsda(tax, users, options);
  ASSERT_TRUE(result.ok()) << result.status().message();

  const auto summary =
      ComputePsdaAccuracy(tax, truth, result.value(), options.beta);
  ASSERT_TRUE(summary.ok()) << summary.status().message();
  const AccuracySummary& accuracy = summary.value();
  EXPECT_EQ(accuracy.clusters_checked,
            result.value().clustering.clusters.size());
  EXPECT_GE(accuracy.clusters_scored, 1u);
  EXPECT_TRUE(std::isfinite(accuracy.mean_cluster_kl));
  EXPECT_GE(accuracy.bound_violation_rate, 0.0);
  EXPECT_LE(accuracy.bound_violation_rate, 1.0);
  EXPECT_LE(accuracy.bound_violations, accuracy.clusters_checked);
  EXPECT_GT(accuracy.mean_abs_error, 0.0) << "LDP estimates are noisy";
  ASSERT_EQ(accuracy.level_rel_error.size(), tax.height() + 1);
  // The Theorem 4.5 check is a telemetry proxy (nested same-path clusters
  // mix raw contributions), so only its bookkeeping is asserted here; the
  // benchdiff trajectory is what watches its level over time.
}

TEST(AccuracyTest, PublishWritesGlobalGaugesAndCounters) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetValues();
  registry.set_enabled(true);

  AccuracySummary summary;
  summary.level_rel_error = {0.1, 0.2, 0.4};
  summary.mean_abs_error = 2.5;
  summary.max_abs_error = 9.0;
  summary.kl_divergence = 0.05;
  summary.mean_cluster_kl = 0.07;
  summary.clusters_scored = 3;
  summary.bound_violation_rate = 0.25;
  summary.bound_violations = 1;
  summary.clusters_checked = 4;
  PublishAccuracy(summary);
  registry.set_enabled(false);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const auto gauge = [&snapshot](const std::string& name) -> double {
    for (const obs::GaugeSnapshot& entry : snapshot.gauges) {
      if (entry.name == name) return entry.value;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return std::nan("");
  };
  EXPECT_DOUBLE_EQ(gauge("accuracy.rel_err_l0"), 0.1);
  EXPECT_DOUBLE_EQ(gauge("accuracy.rel_err_l2"), 0.4);
  EXPECT_DOUBLE_EQ(gauge("accuracy.mae"), 2.5);
  EXPECT_DOUBLE_EQ(gauge("accuracy.max_abs_error"), 9.0);
  EXPECT_DOUBLE_EQ(gauge("accuracy.kl"), 0.05);
  EXPECT_DOUBLE_EQ(gauge("accuracy.cluster_kl_mean"), 0.07);
  EXPECT_DOUBLE_EQ(gauge("accuracy.bound_violation_rate"), 0.25);
  uint64_t violations = 0, checked = 0;
  for (const obs::CounterSnapshot& entry : snapshot.counters) {
    if (entry.name == "accuracy.bound_violations") violations = entry.value;
    if (entry.name == "accuracy.clusters_checked") checked = entry.value;
  }
  EXPECT_EQ(violations, 1u);
  EXPECT_EQ(checked, 4u);
}

}  // namespace
}  // namespace pldp
