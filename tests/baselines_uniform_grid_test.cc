#include "baselines/uniform_grid.h"

#include <numeric>

#include <gtest/gtest.h>

#include "geo/taxonomy.h"
#include "util/random.h"

namespace pldp {
namespace {

SpatialTaxonomy MakeTaxonomy(uint32_t side = 8) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, static_cast<double>(side),
                                      static_cast<double>(side)},
                          1, 1)
          .value();
  return SpatialTaxonomy::Build(grid, 4).value();
}

std::vector<UserRecord> MakeCohort(const SpatialTaxonomy& tax, size_t n,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<UserRecord> users;
  for (size_t i = 0; i < n; ++i) {
    const CellId cell =
        rng.Bernoulli(0.6)
            ? 0
            : static_cast<CellId>(rng.NextUint64(tax.grid().num_cells()));
    UserRecord user;
    user.cell = cell;
    user.spec.safe_region = tax.AncestorAbove(
        tax.LeafNodeOfCell(cell), static_cast<uint32_t>(rng.NextUint64(3)));
    user.spec.epsilon = 1.0;
    users.push_back(user);
  }
  return users;
}

TEST(UniformGridBaselineTest, RejectsBadInputs) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  EXPECT_FALSE(
      RunUniformGridBaseline(tax, {}, UniformGridBaselineOptions()).ok());
  UniformGridBaselineOptions bad;
  bad.guideline_c0 = 0.0;
  const auto users = MakeCohort(tax, 100, 1);
  EXPECT_FALSE(RunUniformGridBaseline(tax, users, bad).ok());
}

TEST(UniformGridBaselineTest, DeterministicAndSized) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const auto users = MakeCohort(tax, 2000, 3);
  UniformGridBaselineOptions options;
  const auto a = RunUniformGridBaseline(tax, users, options).value();
  const auto b = RunUniformGridBaseline(tax, users, options).value();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), tax.grid().num_cells());
}

TEST(UniformGridBaselineTest, MassStaysWithinSafeRegions) {
  // All users share one safe region; estimates outside it must be zero.
  const SpatialTaxonomy tax = MakeTaxonomy();
  const NodeId child0 = tax.children(tax.root())[0];
  const CellId inside = tax.RegionCells(child0)[0];
  std::vector<UserRecord> users(3000, UserRecord{inside, {child0, 1.0}});
  const auto counts =
      RunUniformGridBaseline(tax, users, UniformGridBaselineOptions()).value();
  std::vector<bool> in_region(tax.grid().num_cells(), false);
  for (const CellId cell : tax.RegionCells(child0)) in_region[cell] = true;
  for (CellId cell = 0; cell < counts.size(); ++cell) {
    if (!in_region[cell]) {
      EXPECT_DOUBLE_EQ(counts[cell], 0.0) << "cell " << cell;
    }
  }
}

TEST(UniformGridBaselineTest, TracksSkewAtCoarseResolution) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 30000;
  const auto users = MakeCohort(tax, n, 7);
  const auto counts =
      RunUniformGridBaseline(tax, users, UniformGridBaselineOptions()).value();
  const double total = std::accumulate(counts.begin(), counts.end(), 0.0);
  // PCEP is unbiased; totals should land near n (no consistency step here).
  EXPECT_NEAR(total, static_cast<double>(n), 0.25 * n);
  // The hot corner (cell 0 has ~60% of users) should show up even after
  // coarse-block spreading.
  EXPECT_GT(counts[0], 0.05 * n);
}

TEST(AdaptiveGridBaselineTest, RejectsBadInputs) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  EXPECT_FALSE(
      RunAdaptiveGridBaseline(tax, {}, AdaptiveGridBaselineOptions()).ok());
  AdaptiveGridBaselineOptions bad;
  bad.guideline_c2 = -1.0;
  const auto users = MakeCohort(tax, 100, 1);
  EXPECT_FALSE(RunAdaptiveGridBaseline(tax, users, bad).ok());
}

TEST(AdaptiveGridBaselineTest, DeterministicAndPreservesTotals) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 20000;
  const auto users = MakeCohort(tax, n, 5);
  AdaptiveGridBaselineOptions options;
  const auto a = RunAdaptiveGridBaseline(tax, users, options).value();
  const auto b = RunAdaptiveGridBaseline(tax, users, options).value();
  EXPECT_EQ(a, b);
  const double total = std::accumulate(a.begin(), a.end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(n), 0.3 * n);
}

TEST(AdaptiveGridBaselineTest, HandlesSingleMemberGroups) {
  // Groups of one user exercise the single-wave fallback.
  const SpatialTaxonomy tax = MakeTaxonomy();
  std::vector<UserRecord> users = {
      {0, {tax.LeafNodeOfCell(0), 1.0}},
      {5, {tax.LeafNodeOfCell(5), 1.0}},
  };
  const auto counts =
      RunAdaptiveGridBaseline(tax, users, AdaptiveGridBaselineOptions());
  ASSERT_TRUE(counts.ok()) << counts.status();
  EXPECT_EQ(counts->size(), tax.grid().num_cells());
}

TEST(AdaptiveGridBaselineTest, MassStaysWithinSafeRegions) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const NodeId child0 = tax.children(tax.root())[0];
  const CellId inside = tax.RegionCells(child0)[0];
  std::vector<UserRecord> users(4000, UserRecord{inside, {child0, 1.0}});
  const auto counts =
      RunAdaptiveGridBaseline(tax, users, AdaptiveGridBaselineOptions())
          .value();
  std::vector<bool> in_region(tax.grid().num_cells(), false);
  for (const CellId cell : tax.RegionCells(child0)) in_region[cell] = true;
  for (CellId cell = 0; cell < counts.size(); ++cell) {
    if (!in_region[cell]) {
      EXPECT_DOUBLE_EQ(counts[cell], 0.0) << "cell " << cell;
    }
  }
}

TEST(UniformGridBaselineTest, GuidelineCapsAtLeafResolution) {
  // A huge c0 forces 1x1 coarse grids (everything in one block); a tiny c0
  // reaches leaf resolution. Both must still run and return sane sizes.
  const SpatialTaxonomy tax = MakeTaxonomy();
  const auto users = MakeCohort(tax, 1000, 9);
  for (const double c0 : {1e-3, 1e6}) {
    UniformGridBaselineOptions options;
    options.guideline_c0 = c0;
    const auto counts = RunUniformGridBaseline(tax, users, options);
    ASSERT_TRUE(counts.ok()) << "c0 " << c0;
    EXPECT_EQ(counts->size(), tax.grid().num_cells());
  }
}

}  // namespace
}  // namespace pldp
