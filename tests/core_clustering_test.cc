#include "core/clustering.h"

#include <set>

#include <gtest/gtest.h>

#include "core/error_model.h"
#include "geo/taxonomy.h"

namespace pldp {
namespace {

SpatialTaxonomy MakeTaxonomy(uint32_t side = 8) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, static_cast<double>(side),
                                      static_cast<double>(side)},
                          1, 1)
          .value();
  return SpatialTaxonomy::Build(grid, 4).value();
}

UserGroup MakeGroup(NodeId region, uint64_t n, double epsilon) {
  UserGroup group;
  group.region = region;
  group.members.resize(n);
  for (uint64_t i = 0; i < n; ++i) group.members[i] = static_cast<uint32_t>(i);
  group.varsigma = static_cast<double>(n) * PrivacyFactorTerm(epsilon);
  return group;
}

TEST(ClusteringTest, EmptyAndSingleton) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  ClusteringOptions options;
  const auto empty = ClusterUserGroups(tax, {}, options).value();
  EXPECT_TRUE(empty.clusters.empty());
  EXPECT_EQ(empty.merges, 0u);

  const auto single =
      ClusterUserGroups(tax, {MakeGroup(tax.root(), 100, 1.0)}, options)
          .value();
  ASSERT_EQ(single.clusters.size(), 1u);
  EXPECT_EQ(single.clusters[0].n, 100u);
  EXPECT_EQ(single.clusters[0].region_size, 64u);
  EXPECT_EQ(single.merges, 0u);
}

TEST(ClusteringTest, RejectsDuplicateRegions) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const std::vector<UserGroup> groups = {MakeGroup(tax.root(), 10, 1.0),
                                         MakeGroup(tax.root(), 20, 1.0)};
  EXPECT_FALSE(ClusterUserGroups(tax, groups, ClusteringOptions()).ok());
}

TEST(ClusteringTest, RejectsEmptyGroup) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  UserGroup empty_group;
  empty_group.region = tax.root();
  EXPECT_FALSE(
      ClusterUserGroups(tax, {empty_group}, ClusteringOptions()).ok());
}

TEST(ClusteringTest, Example41ShapeMergesNestedGroups) {
  // Mirrors Example 4.1: a large group at an internal node and a smaller
  // group at one of its descendants; merging them lowers the bound, so the
  // algorithm must merge.
  const SpatialTaxonomy tax = MakeTaxonomy(8);
  const NodeId outer = tax.children(tax.root())[0];     // 16 cells
  const NodeId inner = tax.children(outer)[1];          // 4 cells
  ASSERT_TRUE(tax.Contains(outer, inner));
  const std::vector<UserGroup> groups = {MakeGroup(outer, 60000, 1.0),
                                         MakeGroup(inner, 20000, 1.0)};
  ClusteringOptions options;
  options.beta = 0.2;
  const auto result = ClusterUserGroups(tax, groups, options).value();
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.merges, 1u);
  EXPECT_EQ(result.clusters[0].top_region, outer);
  EXPECT_EQ(result.clusters[0].n, 80000u);
  EXPECT_EQ(result.clusters[0].region_size, tax.RegionSize(outer));
  EXPECT_LT(result.final_max_path_error, result.initial_max_path_error);
}

TEST(ClusteringTest, DisjointRegionsNeverMerge) {
  const SpatialTaxonomy tax = MakeTaxonomy(8);
  const auto& children = tax.children(tax.root());
  ASSERT_GE(children.size(), 2u);
  const std::vector<UserGroup> groups = {MakeGroup(children[0], 5000, 1.0),
                                         MakeGroup(children[1], 5000, 1.0)};
  const auto result =
      ClusterUserGroups(tax, groups, ClusteringOptions()).value();
  EXPECT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.merges, 0u);
}

TEST(ClusteringTest, NeverIncreasesObjective) {
  // Randomized-ish sweep: many nested configurations; the final objective
  // must never exceed the initial one (the algorithm only accepts improving
  // merges).
  const SpatialTaxonomy tax = MakeTaxonomy(16);
  for (uint64_t scenario = 0; scenario < 12; ++scenario) {
    std::vector<UserGroup> groups;
    std::set<NodeId> used;
    // Walk a few root-to-leaf chains, dropping groups at various depths.
    NodeId node = tax.root();
    uint64_t n = 1000 + 7919 * scenario % 50000;
    uint32_t salt = static_cast<uint32_t>(scenario);
    while (!tax.IsLeaf(node)) {
      if ((salt % 3) != 0 && used.insert(node).second) {
        groups.push_back(
            MakeGroup(node, 500 + n % 20000, 0.25 + 0.25 * (salt % 4)));
      }
      const auto& children = tax.children(node);
      node = children[salt % children.size()];
      salt = salt * 31 + 17;
      n = n * 13 + 7;
    }
    if (used.insert(node).second) groups.push_back(MakeGroup(node, 300, 1.0));
    if (groups.empty()) continue;

    const auto result =
        ClusterUserGroups(tax, groups, ClusteringOptions()).value();
    EXPECT_LE(result.final_max_path_error,
              result.initial_max_path_error * (1.0 + 1e-9))
        << "scenario " << scenario;

    // Invariants: clusters partition the groups; every cluster's top region
    // contains all its member groups' regions.
    std::set<uint32_t> seen;
    for (const Cluster& cluster : result.clusters) {
      for (const uint32_t g : cluster.groups) {
        EXPECT_TRUE(seen.insert(g).second);
        EXPECT_TRUE(tax.Contains(cluster.top_region, groups[g].region));
      }
      uint64_t expected_n = 0;
      double expected_varsigma = 0.0;
      for (const uint32_t g : cluster.groups) {
        expected_n += groups[g].n();
        expected_varsigma += groups[g].varsigma;
      }
      EXPECT_EQ(cluster.n, expected_n);
      EXPECT_NEAR(cluster.varsigma, expected_varsigma, 1e-6);
      EXPECT_EQ(cluster.region_size, tax.RegionSize(cluster.top_region));
    }
    EXPECT_EQ(seen.size(), groups.size());
  }
}

TEST(ClusteringTest, TrivialClustersKeepsGroupsSeparate) {
  const SpatialTaxonomy tax = MakeTaxonomy(8);
  const NodeId outer = tax.children(tax.root())[0];
  const NodeId inner = tax.children(outer)[1];
  const std::vector<UserGroup> groups = {MakeGroup(outer, 60000, 1.0),
                                         MakeGroup(inner, 20000, 1.0)};
  const auto result = TrivialClusters(tax, groups, ClusteringOptions()).value();
  EXPECT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.merges, 0u);
}

TEST(ClusteringTest, MaxPathErrorSumsAlongChains) {
  const SpatialTaxonomy tax = MakeTaxonomy(8);
  const NodeId outer = tax.children(tax.root())[0];
  const NodeId inner = tax.children(outer)[1];
  std::vector<Cluster> clusters(2);
  clusters[0].top_region = outer;
  clusters[0].n = 100;
  clusters[0].region_size = tax.RegionSize(outer);
  clusters[0].varsigma = 100 * PrivacyFactorTerm(1.0);
  clusters[1].top_region = inner;
  clusters[1].n = 50;
  clusters[1].region_size = tax.RegionSize(inner);
  clusters[1].varsigma = 50 * PrivacyFactorTerm(1.0);

  const double beta = 0.1;
  const double err_outer = PcepErrorBound(beta / 2, 100, 16, clusters[0].varsigma);
  const double err_inner = PcepErrorBound(beta / 2, 50, 4, clusters[1].varsigma);
  EXPECT_NEAR(MaxPathError(tax, clusters, beta), err_outer + err_inner, 1e-9);
}

}  // namespace
}  // namespace pldp
