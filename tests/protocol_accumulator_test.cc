// Streaming epoch accumulators: admission-control determinism and shed
// accounting, snapshot/restore round trips, rejection of corrupt snapshots,
// and the dedup bitset that makes restarts double-count-proof.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/pcep.h"
#include "protocol/accumulator.h"
#include "util/random.h"

namespace pldp {
namespace {

PcepParams SmallParams(uint64_t seed = 77) {
  PcepParams params;
  params.beta = 0.1;
  params.seed = seed;
  return params;
}

TEST(AdmissionControllerTest, DisabledConfigAdmitsEverything) {
  AdmissionController controller{AdmissionConfig{}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(controller.Admit());
  }
  EXPECT_EQ(controller.admitted(), 1000u);
  EXPECT_EQ(controller.shed(), 0u);
}

TEST(AdmissionControllerTest, OverloadShedsTheExpectedSteadyStateFraction) {
  // service_per_arrival = 0.8: the queue fills, then ~20% of arrivals shed.
  AdmissionConfig config;
  config.max_queue_depth = 32;
  config.service_per_arrival = 0.8;
  AdmissionController controller(config);
  const int arrivals = 10000;
  for (int i = 0; i < arrivals; ++i) controller.Admit();
  const double shed_fraction =
      static_cast<double>(controller.shed()) / arrivals;
  EXPECT_NEAR(shed_fraction, 0.2, 0.02);
  EXPECT_EQ(controller.admitted() + controller.shed(),
            static_cast<uint64_t>(arrivals));
}

TEST(AdmissionControllerTest, DecisionsAreDeterministic) {
  AdmissionConfig config;
  config.max_queue_depth = 8;
  config.service_per_arrival = 0.5;
  AdmissionController a(config);
  AdmissionController b(config);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.Admit(), b.Admit()) << "arrival " << i;
  }
}

TEST(AdmissionControllerTest, DeadlineBudgetShedsProjectedLateReports) {
  AdmissionConfig config;
  config.per_report_service_ms = 10.0;
  config.deadline_budget_ms = 55.0;  // backlog of 5+ reports blows the budget
  config.service_per_arrival = 0.0;  // nothing drains
  AdmissionController controller(config);
  int admitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (controller.Admit()) ++admitted;
  }
  EXPECT_GT(admitted, 0);
  EXPECT_LT(admitted, 8);
  EXPECT_EQ(controller.shed(), 100u - admitted);
}

TEST(ClusterAccumulatorTest, SnapshotRestoreRoundTripIsExact) {
  auto acc = ClusterAccumulator::Create(3, NodeId{9}, 64, 500, SmallParams())
                 .value();
  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    acc.IngestReport(acc.pcep().AssignRow(&rng),
                     rng.Bernoulli(0.5) ? 1.25 : -1.25, 0.7);
  }
  acc.RecordShed();
  acc.RecordShed();
  const ClusterAccumulatorState state = acc.Snapshot();
  EXPECT_EQ(state.cluster_index, 3u);
  EXPECT_EQ(state.n_responded, 200u);
  EXPECT_EQ(state.n_shed, 2u);
  EXPECT_EQ(state.touched_rows.size(), state.touched_values.size());

  auto restored =
      ClusterAccumulator::Create(3, NodeId{9}, 64, 500, SmallParams()).value();
  ASSERT_TRUE(restored.Restore(state).ok());
  EXPECT_EQ(restored.n_responded(), acc.n_responded());
  EXPECT_EQ(restored.n_shed(), acc.n_shed());
  EXPECT_DOUBLE_EQ(restored.varsigma_responded(), acc.varsigma_responded());
  // Touch order survives the round trip, so the decode is bit-identical.
  EXPECT_EQ(restored.pcep().touched_rows(), acc.pcep().touched_rows());
  EXPECT_EQ(restored.pcep().accumulator(), acc.pcep().accumulator());
  EXPECT_EQ(restored.Estimate(), acc.Estimate());
}

TEST(ClusterAccumulatorTest, RestoreRejectsCorruptSnapshots) {
  auto acc = ClusterAccumulator::Create(0, NodeId{1}, 16, 100, SmallParams())
                 .value();
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    acc.IngestReport(acc.pcep().AssignRow(&rng), 1.0, 0.5);
  }
  const ClusterAccumulatorState good = acc.Snapshot();

  const auto fresh = [&] {
    return ClusterAccumulator::Create(0, NodeId{1}, 16, 100, SmallParams())
        .value();
  };

  {  // Row index out of range.
    ClusterAccumulatorState bad = good;
    bad.touched_rows[0] = bad.m + 7;
    EXPECT_FALSE(fresh().Restore(bad).ok());
  }
  {  // Duplicate row entries.
    ASSERT_GE(good.touched_rows.size(), 2u);
    ClusterAccumulatorState bad = good;
    bad.touched_rows[1] = bad.touched_rows[0];
    EXPECT_FALSE(fresh().Restore(bad).ok());
  }
  {  // Rows/values length mismatch.
    ClusterAccumulatorState bad = good;
    bad.touched_values.pop_back();
    EXPECT_FALSE(fresh().Restore(bad).ok());
  }
  {  // Wrong reduced dimension.
    ClusterAccumulatorState bad = good;
    bad.m += 1;
    EXPECT_FALSE(fresh().Restore(bad).ok());
  }
  {  // Counter inconsistency: more responders than accumulated reports.
    ClusterAccumulatorState bad = good;
    bad.num_reports = 0;
    EXPECT_FALSE(fresh().Restore(bad).ok());
  }
  {  // Non-finite accumulator values.
    ClusterAccumulatorState bad = good;
    bad.touched_values[0] = std::nan("");
    EXPECT_FALSE(fresh().Restore(bad).ok());
  }
  // The good snapshot still restores after all the rejected attempts.
  EXPECT_TRUE(fresh().Restore(good).ok());
}

TEST(EpochAccumulatorTest, DuplicateSuppressionIsExact) {
  EpochAccumulator epoch(100, AdmissionConfig{});
  ASSERT_TRUE(epoch.AddCluster(0, NodeId{1}, 32, 100, SmallParams()).ok());

  EXPECT_FALSE(epoch.Seen(42));
  EXPECT_EQ(epoch.IngestReport(0, 42, 3, 1.0, 0.5),
            EpochAccumulator::IngestResult::kAccepted);
  EXPECT_TRUE(epoch.Seen(42));
  // The duplicate never reaches z.
  EXPECT_EQ(epoch.IngestReport(0, 42, 5, -1.0, 0.5),
            EpochAccumulator::IngestResult::kDuplicate);
  EXPECT_EQ(epoch.total_ingested(), 1u);
  EXPECT_EQ(epoch.cluster(0).n_responded(), 1u);
  EXPECT_EQ(epoch.cluster(0).pcep().num_reports(), 1u);
}

TEST(EpochAccumulatorTest, DedupBitsetSurvivesSerialization) {
  EpochAccumulator epoch(130, AdmissionConfig{});
  ASSERT_TRUE(epoch.AddCluster(0, NodeId{1}, 32, 130, SmallParams()).ok());
  const std::vector<uint64_t> users = {0, 1, 63, 64, 65, 127, 128, 129};
  for (uint64_t u : users) {
    ASSERT_EQ(epoch.IngestReport(0, u, u % 7, 1.0, 0.5),
              EpochAccumulator::IngestResult::kAccepted);
  }
  const std::vector<uint64_t> words = epoch.DedupWords();

  EpochAccumulator restarted(130, AdmissionConfig{});
  ASSERT_TRUE(restarted.AddCluster(0, NodeId{1}, 32, 130, SmallParams()).ok());
  ASSERT_TRUE(restarted.RestoreDedup(words).ok());
  for (uint64_t u : users) {
    EXPECT_TRUE(restarted.Seen(u)) << "user " << u;
    // A restart can never double-count a restored user's report.
    EXPECT_EQ(restarted.IngestReport(0, u, u % 7, 1.0, 0.5),
              EpochAccumulator::IngestResult::kDuplicate);
  }
  for (uint64_t u : {2u, 62u, 66u, 126u}) {
    EXPECT_FALSE(restarted.Seen(u)) << "user " << u;
  }
}

TEST(EpochAccumulatorTest, RestoreDedupRejectsMalformedWords) {
  EpochAccumulator epoch(70, AdmissionConfig{});
  {  // Wrong word count for the cohort (70 bits needs 2 words).
    EXPECT_FALSE(epoch.RestoreDedup({0xFFULL}).ok());
    EXPECT_FALSE(epoch.RestoreDedup({0, 0, 0}).ok());
  }
  {  // Stray bits past cohort_size in the tail word.
    std::vector<uint64_t> words(2, 0);
    words[1] = uint64_t{1} << 20;  // bit 84 > 69
    EXPECT_FALSE(epoch.RestoreDedup(words).ok());
  }
  {  // Valid tail bits are accepted.
    std::vector<uint64_t> words(2, 0);
    words[1] = uint64_t{1} << 5;  // bit 69, the last valid position
    EXPECT_TRUE(epoch.RestoreDedup(words).ok());
    EXPECT_TRUE(epoch.Seen(69));
  }
}

TEST(EpochAccumulatorTest, ShedReportsAreBookedAgainstTheirCluster) {
  AdmissionConfig config;
  config.max_queue_depth = 4;
  config.service_per_arrival = 0.0;  // everything past the depth sheds
  EpochAccumulator epoch(50, config);
  ASSERT_TRUE(epoch.AddCluster(0, NodeId{1}, 16, 25, SmallParams()).ok());
  ASSERT_TRUE(epoch.AddCluster(1, NodeId{2}, 16, 25, SmallParams(88)).ok());

  uint64_t admitted = 0;
  for (int i = 0; i < 20; ++i) {
    if (epoch.AdmitOrShed(i % 2)) ++admitted;
  }
  EXPECT_GT(admitted, 0u);
  EXPECT_LT(admitted, 20u);
  EXPECT_EQ(epoch.cluster(0).n_shed() + epoch.cluster(1).n_shed(),
            20u - admitted);
  EXPECT_EQ(epoch.admission().shed(), 20u - admitted);
}

}  // namespace
}  // namespace pldp
