#include "core/frequency_oracle.h"

#include <cmath>
#include <numeric>
#include <tuple>

#include <gtest/gtest.h>

#include "core/psda.h"
#include "geo/taxonomy.h"
#include "util/random.h"

namespace pldp {
namespace {

/// A skewed cohort over `width` items: item k gets a 1/(k+1) share.
std::vector<PcepUser> SkewedUsers(int n, int width, double epsilon,
                                  std::vector<double>* truth) {
  truth->assign(width, 0.0);
  std::vector<PcepUser> users;
  users.reserve(n);
  double total_weight = 0.0;
  for (int k = 0; k < width; ++k) total_weight += 1.0 / (k + 1);
  int assigned = 0;
  for (int k = 0; k < width && assigned < n; ++k) {
    int count = static_cast<int>(n * (1.0 / (k + 1)) / total_weight);
    if (k == width - 1) count = n - assigned;
    count = std::min(count, n - assigned);
    for (int i = 0; i < count; ++i) {
      users.push_back({static_cast<uint32_t>(k), epsilon});
    }
    (*truth)[k] = count;
    assigned += count;
  }
  while (assigned < n) {
    users.push_back({0, epsilon});
    (*truth)[0] += 1;
    ++assigned;
  }
  return users;
}

double Mae(const std::vector<double>& truth,
           const std::vector<double>& estimate) {
  double mae = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    mae = std::max(mae, std::fabs(truth[i] - estimate[i]));
  }
  return mae;
}

class OracleContractTest
    : public ::testing::TestWithParam<const FrequencyOracle*> {};

const PcepOracle kPcep;
const KrrOracle kKrr;
const RapporOracle kRappor;
const OlhOracle kOlh;
const OueOracle kOue;
const HadamardOracle kHr;

TEST_P(OracleContractTest, RejectsBadInputs) {
  const FrequencyOracle& oracle = *GetParam();
  EXPECT_FALSE(oracle.EstimateCounts({}, 8, 0.1, 1).ok());
  EXPECT_FALSE(oracle.EstimateCounts({{9, 1.0}}, 8, 0.1, 1).ok());
  EXPECT_FALSE(oracle.EstimateCounts({{0, 0.0}}, 8, 0.1, 1).ok());
}

TEST_P(OracleContractTest, DeterministicPerSeed) {
  const FrequencyOracle& oracle = *GetParam();
  std::vector<double> truth;
  const auto users = SkewedUsers(3000, 16, 1.0, &truth);
  const auto a = oracle.EstimateCounts(users, 16, 0.1, 7).value();
  const auto b = oracle.EstimateCounts(users, 16, 0.1, 7).value();
  const auto c = oracle.EstimateCounts(users, 16, 0.1, 8).value();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST_P(OracleContractTest, TracksSkewedCounts) {
  const FrequencyOracle& oracle = *GetParam();
  std::vector<double> truth;
  const int n = 40000;
  const auto users = SkewedUsers(n, 16, 1.0, &truth);
  const auto counts = oracle.EstimateCounts(users, 16, 0.1, 11).value();
  ASSERT_EQ(counts.size(), 16u);
  // The head item (~27% of the mass) must be recovered within 50%; RAPPOR's
  // collision bias and kRR's variance both fit comfortably at this size.
  EXPECT_NEAR(counts[0], truth[0], 0.5 * truth[0]) << oracle.Name();
}

INSTANTIATE_TEST_SUITE_P(AllOracles, OracleContractTest,
                         ::testing::Values(&kPcep, &kKrr, &kRappor, &kOlh,
                                           &kOue, &kHr));

TEST(KrrOracleTest, UnbiasedAcrossMixedEpsilons) {
  // All users hold item 3; half report at eps .5, half at 1.5. The debiased
  // estimate must still be centered at n.
  const int n = 60000;
  std::vector<PcepUser> users;
  for (int i = 0; i < n; ++i) {
    users.push_back({3, i % 2 == 0 ? 0.5 : 1.5});
  }
  const KrrOracle oracle;
  const auto counts = oracle.EstimateCounts(users, 32, 0.1, 3).value();
  EXPECT_NEAR(counts[3], n, 0.1 * n);
  // Off items should hover near zero.
  EXPECT_NEAR(counts[0], 0.0, 0.1 * n);
}

TEST(KrrOracleTest, SingletonDomainIsExact) {
  const KrrOracle oracle;
  const std::vector<PcepUser> users(100, PcepUser{0, 1.0});
  const auto counts = oracle.EstimateCounts(users, 1, 0.1, 3).value();
  EXPECT_DOUBLE_EQ(counts[0], 100.0);
}

TEST(KrrOracleTest, VarianceGrowsWithDomain) {
  // The kRR failure mode on large universes: same cohort, wider domain,
  // much larger error (PCEP's error is domain-size-insensitive up to logs).
  std::vector<double> truth_small, truth_large;
  const auto users_small = SkewedUsers(20000, 8, 0.5, &truth_small);
  const auto users_large = SkewedUsers(20000, 512, 0.5, &truth_large);
  const KrrOracle krr;
  double krr_small = 0.0, krr_large = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    krr_small +=
        Mae(truth_small, krr.EstimateCounts(users_small, 8, 0.1, seed).value());
    krr_large += Mae(truth_large,
                     krr.EstimateCounts(users_large, 512, 0.1, seed).value());
  }
  EXPECT_GT(krr_large, 2.0 * krr_small);
}

TEST(RapporOracleTest, RejectsDegenerateConfig) {
  const RapporOracle zero_bits(0, 2);
  EXPECT_FALSE(zero_bits.EstimateCounts({{0, 1.0}}, 4, 0.1, 1).ok());
  const RapporOracle zero_hashes(64, 0);
  EXPECT_FALSE(zero_hashes.EstimateCounts({{0, 1.0}}, 4, 0.1, 1).ok());
}

TEST(RapporOracleTest, PcepBeatsRapporOnLargeDomains) {
  // The related-work claim: "the utility provided by RAPPOR is less
  // desirable than the technique in [3]".
  std::vector<double> truth;
  const auto users = SkewedUsers(40000, 256, 1.0, &truth);
  const PcepOracle pcep;
  const RapporOracle rappor;
  double pcep_mae = 0.0, rappor_mae = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    pcep_mae +=
        Mae(truth, pcep.EstimateCounts(users, 256, 0.1, seed).value());
    rappor_mae +=
        Mae(truth, rappor.EstimateCounts(users, 256, 0.1, seed).value());
  }
  EXPECT_LT(pcep_mae, rappor_mae);
}

TEST(NewBackendsTest, UnbiasedAcrossMixedEpsilons) {
  // All users hold item 3; half report at eps .5, half at 1.5. Every
  // personalized backend must debias per epsilon and land near n.
  const int n = 60000;
  std::vector<PcepUser> users;
  for (int i = 0; i < n; ++i) {
    users.push_back({3, i % 2 == 0 ? 0.5 : 1.5});
  }
  for (const FrequencyOracle* oracle :
       {static_cast<const FrequencyOracle*>(&kOlh),
        static_cast<const FrequencyOracle*>(&kOue),
        static_cast<const FrequencyOracle*>(&kHr)}) {
    const auto counts = oracle->EstimateCounts(users, 32, 0.1, 3).value();
    EXPECT_NEAR(counts[3], n, 0.1 * n) << oracle->Name();
    EXPECT_NEAR(counts[0], 0.0, 0.1 * n) << oracle->Name();
  }
}

TEST(NewBackendsTest, SingletonDomainIsExact) {
  const std::vector<PcepUser> users(100, PcepUser{0, 1.0});
  for (const FrequencyOracle* oracle :
       {static_cast<const FrequencyOracle*>(&kOlh),
        static_cast<const FrequencyOracle*>(&kOue),
        static_cast<const FrequencyOracle*>(&kHr)}) {
    const auto counts = oracle->EstimateCounts(users, 1, 0.1, 3).value();
    ASSERT_EQ(counts.size(), 1u) << oracle->Name();
    EXPECT_DOUBLE_EQ(counts[0], 100.0) << oracle->Name();
  }
}

TEST(HadamardOracleTest, RaggedDomainIsPaddedAndTruncated) {
  // width 1000 pads to a 1024-point transform; the returned vector must be
  // width-long and still track the head item.
  std::vector<double> truth;
  const int n = 60000;
  const auto users = SkewedUsers(n, 1000, 2.0, &truth);
  const auto counts = kHr.EstimateCounts(users, 1000, 0.1, 5).value();
  ASSERT_EQ(counts.size(), 1000u);
  EXPECT_NEAR(counts[0], truth[0], 0.5 * truth[0]);
}

TEST(HadamardOracleTest, ErrorInsensitiveToDomainSize) {
  // The HR selling point vs kRR: same cohort, 64x wider domain, error grows
  // only mildly (per-item noise is domain-size-free up to the padding).
  std::vector<double> truth_small, truth_large;
  const auto users_small = SkewedUsers(20000, 8, 0.5, &truth_small);
  const auto users_large = SkewedUsers(20000, 512, 0.5, &truth_large);
  double hr_small = 0.0, hr_large = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    hr_small += Mae(truth_small,
                    kHr.EstimateCounts(users_small, 8, 0.1, seed).value());
    hr_large += Mae(truth_large,
                    kHr.EstimateCounts(users_large, 512, 0.1, seed).value());
  }
  // kRR blows up ~sqrt(k)-fold here (see KrrOracleTest.VarianceGrowsWith
  // Domain); HR must stay within a small constant factor.
  EXPECT_LT(hr_large, 4.0 * hr_small);
}

TEST(OracleStatsTest, ReportsCommunicationAndDecodeCosts) {
  std::vector<double> truth;
  const auto users = SkewedUsers(5000, 64, 1.0, &truth);
  OracleRunStats stats;

  ASSERT_TRUE(kPcep.EstimateCounts(users, 64, 0.1, 1, &stats).ok());
  EXPECT_DOUBLE_EQ(stats.bytes_per_report, 1.0 / 8.0);  // one sign bit

  ASSERT_TRUE(kKrr.EstimateCounts(users, 64, 0.1, 1, &stats).ok());
  EXPECT_DOUBLE_EQ(stats.bytes_per_report, 6.0 / 8.0);  // log2(64) bits

  ASSERT_TRUE(kOue.EstimateCounts(users, 64, 0.1, 1, &stats).ok());
  EXPECT_DOUBLE_EQ(stats.bytes_per_report, 8.0);  // width/8 bytes

  ASSERT_TRUE(kHr.EstimateCounts(users, 64, 0.1, 1, &stats).ok());
  EXPECT_DOUBLE_EQ(stats.bytes_per_report, 7.0 / 8.0);  // log2(64)+1 bits
  EXPECT_GE(stats.decode_seconds, 0.0);
  EXPECT_GE(stats.encode_seconds, 0.0);

  ASSERT_TRUE(kOlh.EstimateCounts(users, 64, 0.1, 1, &stats).ok());
  // g = round(e^1 + 1) = 4 buckets -> 2 bits.
  EXPECT_DOUBLE_EQ(stats.bytes_per_report, 2.0 / 8.0);

  // Stats collection must not perturb the estimate.
  const auto with = kHr.EstimateCounts(users, 64, 0.1, 9, &stats).value();
  const auto without = kHr.EstimateCounts(users, 64, 0.1, 9).value();
  EXPECT_EQ(with, without);
}

TEST(MakeOracleTest, ConstructsEveryBackendByName) {
  for (const char* name : {"pcep", "krr", "rappor", "olh", "oue", "hr"}) {
    const auto oracle = MakeOracle(name);
    ASSERT_NE(oracle, nullptr) << name;
  }
  EXPECT_EQ(MakeOracle("HR")->Name(), "HR");          // case-insensitive
  EXPECT_EQ(MakeOracle("hadamard")->Name(), "HR");    // alias
  EXPECT_EQ(MakeOracle("PCEP")->Name(), "PCEP");
  EXPECT_EQ(MakeOracle("nope"), nullptr);
  EXPECT_EQ(MakeOracle(""), nullptr);
}

TEST(PsdaWithOracleTest, RunsEndToEndWithEveryOracle) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, 8, 8}, 1, 1).value();
  const SpatialTaxonomy tax = SpatialTaxonomy::Build(grid, 4).value();
  Rng rng(5);
  std::vector<UserRecord> users;
  for (int i = 0; i < 4000; ++i) {
    const auto cell = static_cast<CellId>(rng.NextUint64(64));
    UserRecord user;
    user.cell = cell;
    user.spec.safe_region = tax.AncestorAbove(
        tax.LeafNodeOfCell(cell), 1 + rng.NextUint64(2));
    user.spec.epsilon = 1.0;
    users.push_back(user);
  }
  for (const FrequencyOracle* oracle :
       {static_cast<const FrequencyOracle*>(&kPcep),
        static_cast<const FrequencyOracle*>(&kKrr),
        static_cast<const FrequencyOracle*>(&kRappor),
        static_cast<const FrequencyOracle*>(&kOlh),
        static_cast<const FrequencyOracle*>(&kOue),
        static_cast<const FrequencyOracle*>(&kHr)}) {
    const auto result =
        RunPsdaWithOracle(tax, users, PsdaOptions(), *oracle);
    ASSERT_TRUE(result.ok()) << oracle->Name();
    const double total = std::accumulate(result->counts.begin(),
                                         result->counts.end(), 0.0);
    EXPECT_NEAR(total, 4000.0, 1e-6) << oracle->Name();
  }
}

}  // namespace
}  // namespace pldp
