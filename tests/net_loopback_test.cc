// Loopback integration of the aggregation daemon: a real NetServer on
// 127.0.0.1 driven by real NetClient connections must publish estimates
// bit-identical to the in-process AggregationServer over the same cohort,
// reject corrupted streams by closing, and — stopped mid-epoch the way the
// CLI's SIGTERM handler does — leave a checkpoint a fresh engine restores.

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/psda.h"
#include "net/client.h"
#include "net/epoch_engine.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "protocol/client.h"
#include "protocol/messages.h"
#include "protocol/server.h"
#include "util/random.h"

namespace pldp {
namespace net {
namespace {

SpatialTaxonomy MakeTaxonomy(uint32_t side = 8) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, static_cast<double>(side),
                                      static_cast<double>(side)},
                          1, 1)
          .value();
  return SpatialTaxonomy::Build(grid, 4).value();
}

struct Cohort {
  std::vector<PrivacySpec> specs;
  std::vector<CellId> cells;
};

Cohort MakeCohort(const SpatialTaxonomy& tax, size_t n, uint64_t seed) {
  Rng rng(seed);
  Cohort cohort;
  const double epsilons[] = {0.5, 1.0};
  for (size_t i = 0; i < n; ++i) {
    const auto cell =
        static_cast<CellId>(rng.NextUint64(tax.grid().num_cells()));
    const uint32_t level = static_cast<uint32_t>(rng.NextUint64(3));
    PrivacySpec spec;
    spec.safe_region = tax.AncestorAbove(tax.LeafNodeOfCell(cell), level);
    spec.epsilon = epsilons[rng.NextUint64(2)];
    cohort.specs.push_back(spec);
    cohort.cells.push_back(cell);
  }
  return cohort;
}

std::vector<DeviceClient> MakeClients(const SpatialTaxonomy& tax,
                                      const Cohort& cohort, uint64_t seed) {
  std::vector<DeviceClient> clients;
  clients.reserve(cohort.specs.size());
  for (size_t i = 0; i < cohort.specs.size(); ++i) {
    clients.emplace_back(&tax, cohort.cells[i], cohort.specs[i],
                         SplitMix64(seed ^ (i + 1)));
  }
  return clients;
}

// Uploads specs for users [begin, end) over `conn` and, after the spec seal,
// replays the report round for the same slice.
void UploadSpecsOver(NetClient* conn, const Cohort& cohort, size_t begin,
                     size_t end) {
  for (size_t i = begin; i < end; ++i) {
    SpecUploadMsg msg;
    msg.safe_region = cohort.specs[i].safe_region;
    msg.epsilon = cohort.specs[i].epsilon;
    const auto accepted = conn->UploadSpec(i, msg);
    ASSERT_TRUE(accepted.ok()) << accepted.status();
    EXPECT_TRUE(accepted.value()) << "user " << i;
  }
}

void ReportOver(NetClient* conn, std::vector<DeviceClient>* devices,
                size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    const auto assignment = conn->FetchAssignment(i);
    ASSERT_TRUE(assignment.ok()) << assignment.status();
    const auto reply =
        (*devices)[i].HandleRowAssignment(assignment->Serialize());
    ASSERT_TRUE(reply.ok()) << reply.status();
    const ReportMsg report = ReportMsg::Parse(reply.value()).value();
    const auto outcome = conn->SubmitReport(i, report);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome.value(), ReportOutcome::kAccepted) << "user " << i;
  }
}

TEST(NetLoopbackTest, BitIdenticalToInProcessRun) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 400;
  const uint64_t seed = 42;
  const Cohort cohort = MakeCohort(tax, n, seed);

  PsdaOptions psda;
  psda.seed = seed;
  EpochEngineOptions engine_options;
  engine_options.psda = psda;
  EpochEngine engine(&tax, engine_options);

  NetServerOptions server_options;
  server_options.io_threads = 2;
  NetServer server(&engine, server_options);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();
  ASSERT_GT(port, 0);

  // Three concurrent connections, each owning a contiguous user slice —
  // the smallest shape that still exercises cross-connection ingest.
  NetClient conns[3];
  const size_t bounds[4] = {0, n / 3, 2 * n / 3, n};
  for (int c = 0; c < 3; ++c) {
    ASSERT_TRUE(conns[c].Connect("127.0.0.1", port).ok());
    UploadSpecsOver(&conns[c], cohort, bounds[c], bounds[c + 1]);
  }

  const auto seal = conns[0].SealSpecs(n);
  ASSERT_TRUE(seal.ok()) << seal.status();
  EXPECT_EQ(seal->spec_responders, static_cast<uint64_t>(n));
  EXPECT_GT(seal->num_clusters, 0u);

  std::vector<DeviceClient> devices = MakeClients(tax, cohort, seed);
  for (int c = 0; c < 3; ++c) {
    ReportOver(&conns[c], &devices, bounds[c], bounds[c + 1]);
  }

  const auto sealed = conns[1].SealEpoch();
  ASSERT_TRUE(sealed.ok()) << sealed.status();
  EXPECT_EQ(sealed.value(), tax.grid().num_cells());

  const auto estimates = conns[2].FetchEstimates();
  ASSERT_TRUE(estimates.ok()) << estimates.status();
  server.Stop();

  auto clients = MakeClients(tax, cohort, seed);
  AggregationServer in_process(&tax, psda);
  const PsdaResult baseline = in_process.Collect(&clients, nullptr).value();
  ASSERT_EQ(estimates->size(), baseline.counts.size());
  for (size_t k = 0; k < baseline.counts.size(); ++k) {
    EXPECT_EQ((*estimates)[k], baseline.counts[k]) << "cell " << k;
  }

  const NetServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 3u);
  EXPECT_GT(stats.frames_received, static_cast<uint64_t>(2 * n));
  EXPECT_EQ(stats.frame_errors, 0u);
}

// The instrumentation-never-changes-results gate: with the flight recorder
// AND the metrics registry fully enabled (the timed ingest path, per-frame
// histograms, flight events on every frame), the daemon's published
// estimates must stay bit-identical to the uninstrumented in-process run.
TEST(NetLoopbackTest, BitIdenticalWithIntrospectionFullyEnabled) {
  auto& recorder = obs::FlightRecorder::Global();
  recorder.Enable(1024);
  obs::MetricsRegistry::Global().set_enabled(true);

  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 400;
  const uint64_t seed = 42;
  const Cohort cohort = MakeCohort(tax, n, seed);

  PsdaOptions psda;
  psda.seed = seed;
  EpochEngineOptions engine_options;
  engine_options.psda = psda;
  EpochEngine engine(&tax, engine_options);
  NetServerOptions server_options;
  server_options.io_threads = 2;
  NetServer server(&engine, server_options);
  ASSERT_TRUE(server.Start().ok());

  NetClient conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.port()).ok());
  UploadSpecsOver(&conn, cohort, 0, n);
  ASSERT_TRUE(conn.SealSpecs(n).ok());
  std::vector<DeviceClient> devices = MakeClients(tax, cohort, seed);
  ReportOver(&conn, &devices, 0, n);

  // Poll the control plane mid-epoch, exactly as `pldp_cli stat` would.
  const auto mid = conn.FetchStats();
  ASSERT_TRUE(mid.ok()) << mid.status();
  EXPECT_EQ(mid->phase, 1);  // collecting reports
  EXPECT_EQ(mid->reports_staged, static_cast<uint64_t>(n));

  ASSERT_TRUE(conn.SealEpoch().ok());
  const auto estimates = conn.FetchEstimates();
  ASSERT_TRUE(estimates.ok()) << estimates.status();
  server.Stop();

  obs::MetricsRegistry::Global().set_enabled(false);
  EXPECT_GT(recorder.recorded(), 0u);
  recorder.Disable();

  auto clients = MakeClients(tax, cohort, seed);
  AggregationServer in_process(&tax, psda);
  const PsdaResult baseline = in_process.Collect(&clients, nullptr).value();
  ASSERT_EQ(estimates->size(), baseline.counts.size());
  for (size_t k = 0; k < baseline.counts.size(); ++k) {
    EXPECT_EQ((*estimates)[k], baseline.counts[k]) << "cell " << k;
  }
}

TEST(NetLoopbackTest, StatsFrameIsConsistentAcrossTheEpoch) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 100;
  const Cohort cohort = MakeCohort(tax, n, 7);
  EpochEngineOptions engine_options;
  engine_options.psda.seed = 7;
  EpochEngine engine(&tax, engine_options);
  NetServer server(&engine, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  NetClient conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.port()).ok());

  // Fresh daemon: collecting specs, nothing counted yet.
  auto stats = conn.FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->phase, 0);
  EXPECT_EQ(stats->draining, 0);
  EXPECT_EQ(stats->specs_accepted, 0u);
  EXPECT_EQ(stats->connections_accepted, 1u);

  UploadSpecsOver(&conn, cohort, 0, n);
  stats = conn.FetchStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->specs_accepted, static_cast<uint64_t>(n));
  EXPECT_EQ(stats->spec_responders, static_cast<uint64_t>(n));

  ASSERT_TRUE(conn.SealSpecs(n).ok());
  std::vector<DeviceClient> devices = MakeClients(tax, cohort, 7);
  ReportOver(&conn, &devices, 0, n / 2);
  stats = conn.FetchStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->phase, 1);
  EXPECT_EQ(stats->reports_staged, static_cast<uint64_t>(n / 2));
  EXPECT_EQ(stats->cohort_size, static_cast<uint64_t>(n));
  EXPECT_GT(stats->num_clusters, 0u);
  EXPECT_GT(stats->frames_received, static_cast<uint64_t>(n));
  EXPECT_GT(stats->uptime_ms + 1, 0u);  // monotone, may round to 0 early

  ReportOver(&conn, &devices, n / 2, n);
  ASSERT_TRUE(conn.SealEpoch().ok());
  stats = conn.FetchStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->phase, 2);
  EXPECT_EQ(stats->reports_folded, static_cast<uint64_t>(n));
  EXPECT_EQ(stats->published_cells,
            static_cast<uint64_t>(tax.grid().num_cells()));
  server.Stop();
}

TEST(NetLoopbackTest, DrainStopsNewConnectionsButFinishesExisting) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  EpochEngineOptions engine_options;
  engine_options.psda.seed = 13;
  EpochEngine engine(&tax, engine_options);
  NetServer server(&engine, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  NetClient conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(conn.Drain().ok());
  EXPECT_TRUE(server.draining());

  // The draining flag is visible over the control plane...
  const auto stats = conn.FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->draining, 1);

  // ...the established connection still serves data frames...
  SpecUploadMsg msg;
  msg.safe_region = tax.root();
  msg.epsilon = 1.0;
  const auto accepted = conn.UploadSpec(0, msg);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_TRUE(accepted.value());

  // ...and a second Drain is an idempotent no-op.
  EXPECT_TRUE(conn.Drain().ok());
  server.Stop();
}

TEST(NetLoopbackTest, CorruptFrameClosesConnectionCleanly) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  EpochEngineOptions engine_options;
  engine_options.psda.seed = 9;
  EpochEngine engine(&tax, engine_options);
  NetServerOptions server_options;
  server_options.io_threads = 1;
  NetServer server(&engine, server_options);
  ASSERT_TRUE(server.Start().ok());

  NetClient bad;
  ASSERT_TRUE(bad.Connect("127.0.0.1", server.port()).ok());
  // A structurally complete frame whose payload bit was flipped: the CRC
  // cannot verify, so the server must close without interpreting a byte.
  std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kRowRequest, EncodeRowRequestBody(1));
  frame.back() ^= 0x04;
  ASSERT_TRUE(bad.SendRaw(frame).ok());
  const auto reply = bad.ReadAssignment();
  EXPECT_FALSE(reply.ok());

  // The engine saw nothing and a healthy connection still works.
  NetClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", server.port()).ok());
  SpecUploadMsg msg;
  msg.safe_region = tax.root();
  msg.epsilon = 1.0;
  const auto accepted = good.UploadSpec(0, msg);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_TRUE(accepted.value());

  server.Stop();
  EXPECT_GE(server.stats().frame_errors, 1u);
  EXPECT_EQ(engine.stats().unknown_user_frames, 0u);
}

TEST(NetLoopbackTest, ErrorFramesCarryStatusAcrossTheWire) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  EpochEngineOptions engine_options;
  engine_options.psda.seed = 11;
  EpochEngine engine(&tax, engine_options);
  NetServer server(&engine, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  NetClient conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.port()).ok());
  // Estimates before any publish: the daemon answers kError with the
  // engine's FailedPrecondition, which the client surfaces as that Status.
  const auto estimates = conn.FetchEstimates();
  ASSERT_FALSE(estimates.ok());
  EXPECT_EQ(estimates.status().code(), StatusCode::kFailedPrecondition);

  // The connection survives an error frame (it is a reply, not a violation).
  SpecUploadMsg msg;
  msg.safe_region = tax.root();
  msg.epsilon = 0.5;
  const auto accepted = conn.UploadSpec(3, msg);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  server.Stop();
}

TEST(NetLoopbackTest, StopMidEpochLeavesRestorableCheckpoint) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 300;
  const uint64_t seed = 65;
  const Cohort cohort = MakeCohort(tax, n, seed);
  const std::string dir = ::testing::TempDir() + "/pldp_net_loopback_restore";

  PsdaOptions psda;
  psda.seed = seed;
  EpochEngineOptions engine_options;
  engine_options.psda = psda;
  engine_options.epoch = 2;
  engine_options.checkpoint.dir = dir;

  // First daemon: specs sealed, half the reports ingested, then the CLI's
  // SIGTERM sequence — Stop() the sockets, Checkpoint() the engine.
  {
    EpochEngine engine(&tax, engine_options);
    NetServer server(&engine, NetServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    NetClient conn;
    ASSERT_TRUE(conn.Connect("127.0.0.1", server.port()).ok());
    UploadSpecsOver(&conn, cohort, 0, n);
    ASSERT_TRUE(conn.SealSpecs(n).ok());
    std::vector<DeviceClient> devices = MakeClients(tax, cohort, seed);
    ReportOver(&conn, &devices, 0, n / 2);
    server.Stop();
    ASSERT_TRUE(engine.Checkpoint().ok());
    EXPECT_EQ(engine.phase(), EpochEngine::Phase::kCollectingReports);
  }

  // Second daemon: restore, then finish the epoch over a fresh socket.
  EpochEngine engine(&tax, engine_options);
  ASSERT_TRUE(engine.RestoreLatest().ok());
  EXPECT_EQ(engine.phase(), EpochEngine::Phase::kCollectingReports);
  EXPECT_EQ(engine.stats().restored_reports, static_cast<uint64_t>(n / 2));

  NetServer server(&engine, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  NetClient conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", server.port()).ok());
  std::vector<DeviceClient> devices = MakeClients(tax, cohort, seed);
  ReportOver(&conn, &devices, n / 2, n);
  const auto sealed = conn.SealEpoch();
  ASSERT_TRUE(sealed.ok()) << sealed.status();
  const auto estimates = conn.FetchEstimates();
  ASSERT_TRUE(estimates.ok()) << estimates.status();
  server.Stop();

  const double total =
      std::accumulate(estimates->begin(), estimates->end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(n), 1e-6);
}

}  // namespace
}  // namespace net
}  // namespace pldp
