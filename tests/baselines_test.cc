#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/cloak.h"
#include "baselines/kdtree.h"
#include "baselines/sr.h"
#include "geo/taxonomy.h"
#include "util/random.h"

namespace pldp {
namespace {

SpatialTaxonomy MakeTaxonomy(uint32_t side = 8) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, static_cast<double>(side),
                                      static_cast<double>(side)},
                          1, 1)
          .value();
  return SpatialTaxonomy::Build(grid, 4).value();
}

std::vector<UserRecord> SkewedCohort(const SpatialTaxonomy& tax, size_t n,
                                     uint64_t seed, uint32_t max_level = 3) {
  Rng rng(seed);
  std::vector<UserRecord> users;
  users.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // 70% of users in cell 0, the rest uniform.
    const CellId cell =
        rng.Bernoulli(0.7)
            ? 0
            : static_cast<CellId>(rng.NextUint64(tax.grid().num_cells()));
    UserRecord user;
    user.cell = cell;
    user.spec.safe_region = tax.AncestorAbove(
        tax.LeafNodeOfCell(cell),
        static_cast<uint32_t>(rng.NextUint64(max_level + 1)));
    user.spec.epsilon = 1.0;
    users.push_back(user);
  }
  return users;
}

std::vector<double> Truth(const SpatialTaxonomy& tax,
                          const std::vector<UserRecord>& users) {
  std::vector<double> histogram(tax.grid().num_cells(), 0.0);
  for (const UserRecord& user : users) histogram[user.cell] += 1.0;
  return histogram;
}

TEST(SrTest, EstimatesTrackSkew) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 30000;
  const auto users = SkewedCohort(tax, n, 3);
  const auto counts = RunSr(tax, users, PsdaOptions()).value();
  ASSERT_EQ(counts.size(), tax.grid().num_cells());
  // Cell 0 holds ~70% of users; SR should see most of that mass.
  EXPECT_GT(counts[0], 0.4 * n);
  EXPECT_LT(counts[0], 1.0 * n);
}

TEST(SrTest, RejectsEmptyAndInvalid) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  EXPECT_FALSE(RunSr(tax, {}, PsdaOptions()).ok());
  std::vector<UserRecord> bad = {{0, {tax.root(), 0.0}}};
  EXPECT_FALSE(RunSr(tax, bad, PsdaOptions()).ok());
}

TEST(CloakTest, ReportsStayInSafeRegionAndPreserveTotals) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  // Every user in cell 0 with the root's first child as safe region.
  const NodeId child0 = tax.children(tax.root())[0];
  std::vector<UserRecord> users;
  for (int i = 0; i < 5000; ++i) users.push_back({0, {child0, 1.0}});
  const auto counts = RunCloak(tax, users, 9).value();

  double inside = 0.0, outside = 0.0;
  const auto region = tax.RegionCells(child0);
  std::vector<bool> in_region(tax.grid().num_cells(), false);
  for (const CellId cell : region) in_region[cell] = true;
  for (CellId cell = 0; cell < counts.size(); ++cell) {
    (in_region[cell] ? inside : outside) += counts[cell];
  }
  EXPECT_DOUBLE_EQ(outside, 0.0);
  EXPECT_DOUBLE_EQ(inside, 5000.0);
  // ...and spread roughly uniformly: cell 0 gets ~ n/|region|.
  EXPECT_NEAR(counts[0], 5000.0 / region.size(),
              5 * std::sqrt(5000.0 / region.size()) + 20);
}

TEST(CloakTest, IndependentOfEpsilon) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto users_a = SkewedCohort(tax, 2000, 5);
  auto users_b = users_a;
  for (auto& user : users_b) user.spec.epsilon = 0.25;
  const auto a = RunCloak(tax, users_a, 11).value();
  const auto b = RunCloak(tax, users_b, 11).value();
  EXPECT_EQ(a, b);
}

TEST(KdTreeTest, EstimatesSumApproximatelyToN) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 20000;
  const auto users = SkewedCohort(tax, n, 7);
  const auto counts = RunKdTree(tax, users, KdTreeOptions()).value();
  const double total = std::accumulate(counts.begin(), counts.end(), 0.0);
  // Mean consistency pins each group's total to its public size.
  EXPECT_NEAR(total, static_cast<double>(n), 1e-6);
}

TEST(KdTreeTest, TracksSkewedMass) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 30000;
  // Groups at leaf level only would be exact; use coarse safe regions to
  // exercise the tree.
  std::vector<UserRecord> users;
  Rng rng(13);
  for (size_t i = 0; i < n; ++i) {
    const CellId cell =
        rng.Bernoulli(0.7)
            ? 0
            : static_cast<CellId>(rng.NextUint64(tax.grid().num_cells()));
    users.push_back({cell, {tax.root(), 1.0}});
  }
  const auto counts = RunKdTree(tax, users, KdTreeOptions()).value();
  const auto truth = Truth(tax, users);
  EXPECT_NEAR(counts[0], truth[0], 0.6 * truth[0]);
}

TEST(KdTreeTest, SingleCellRegionsAreExact) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  std::vector<UserRecord> users;
  for (int i = 0; i < 100; ++i) {
    users.push_back({5, {tax.LeafNodeOfCell(5), 1.0}});
  }
  const auto counts = RunKdTree(tax, users, KdTreeOptions()).value();
  EXPECT_DOUBLE_EQ(counts[5], 100.0);
}

TEST(KdTreeTest, DepthCapLimitsResolution) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const auto users = SkewedCohort(tax, 5000, 17);
  KdTreeOptions shallow;
  shallow.max_depth = 1;
  const auto counts = RunKdTree(tax, users, shallow).value();
  const double total = std::accumulate(counts.begin(), counts.end(), 0.0);
  EXPECT_NEAR(total, 5000.0, 1e-6);
}

TEST(KdTreeTest, WeightedAveragingPreservesTotalsAndHelps) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 30000;
  std::vector<UserRecord> users;
  Rng rng(21);
  for (size_t i = 0; i < n; ++i) {
    const CellId cell =
        rng.Bernoulli(0.7)
            ? 0
            : static_cast<CellId>(rng.NextUint64(tax.grid().num_cells()));
    users.push_back({cell, {tax.root(), 0.5}});
  }
  const auto truth = Truth(tax, users);

  KdTreeOptions plain;
  KdTreeOptions weighted;
  weighted.weighted_averaging = true;
  double plain_mae = 0.0, weighted_mae = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    plain.seed = weighted.seed = 5000 + seed;
    const auto a = RunKdTree(tax, users, plain).value();
    const auto b = RunKdTree(tax, users, weighted).value();
    const double total_b = std::accumulate(b.begin(), b.end(), 0.0);
    EXPECT_NEAR(total_b, static_cast<double>(n), 1e-6);
    for (size_t k = 0; k < truth.size(); ++k) {
      plain_mae = std::max(plain_mae, std::fabs(a[k] - truth[k]));
      weighted_mae = std::max(weighted_mae, std::fabs(b[k] - truth[k]));
    }
  }
  // Inverse-variance blending should not be (meaningfully) worse than plain
  // mean-consistency; at small epsilon it is typically clearly better.
  EXPECT_LT(weighted_mae, 1.25 * plain_mae);
}

TEST(KdTreeTest, RejectsBadOptions) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const auto users = SkewedCohort(tax, 100, 19);
  KdTreeOptions bad;
  bad.max_depth = 0;
  EXPECT_FALSE(RunKdTree(tax, users, bad).ok());
  EXPECT_FALSE(RunKdTree(tax, {}, KdTreeOptions()).ok());
}

}  // namespace
}  // namespace pldp
