#include "cli/cli.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.h"

namespace pldp {
namespace {

TEST(CliParseTest, RejectsEmptyAndUnknown) {
  EXPECT_FALSE(ParseCliArgs({}).ok());
  EXPECT_FALSE(ParseCliArgs({"frobnicate"}).ok());
  EXPECT_FALSE(ParseCliArgs({"run", "--bogus"}).ok());
  EXPECT_FALSE(ParseCliArgs({"run", "--dataset"}).ok());  // missing value
}

TEST(CliParseTest, ParsesRunFlags) {
  const CliOptions options =
      ParseCliArgs({"run", "--dataset", "road", "--scheme", "kdtree",
                    "--setting", "S1E2", "--scale", "0.01", "--beta", "0.2",
                    "--seed", "99", "--output", "/tmp/x.csv"})
          .value();
  EXPECT_EQ(options.command, "run");
  EXPECT_EQ(options.dataset, "road");
  EXPECT_EQ(options.scheme, "kdtree");
  EXPECT_EQ(options.setting, "S1E2");
  EXPECT_DOUBLE_EQ(options.scale, 0.01);
  EXPECT_DOUBLE_EQ(options.beta, 0.2);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.output_csv, "/tmp/x.csv");
}

TEST(CliParseTest, ParsesDomainAndCell) {
  const CliOptions options =
      ParseCliArgs({"run", "--input", "p.csv", "--domain", "-125,25,-65,50",
                    "--cell", "1,0.5"})
          .value();
  EXPECT_EQ(options.input_csv, "p.csv");
  EXPECT_DOUBLE_EQ(options.domain[0], -125);
  EXPECT_DOUBLE_EQ(options.domain[3], 50);
  EXPECT_DOUBLE_EQ(options.cell_width, 1.0);
  EXPECT_DOUBLE_EQ(options.cell_height, 0.5);
  EXPECT_FALSE(
      ParseCliArgs({"run", "--domain", "1,2,3"}).ok());  // wrong arity
  EXPECT_FALSE(ParseCliArgs({"run", "--cell", "a,b"}).ok());
}

TEST(CliRunTest, ListsDatasetsAndSchemes) {
  std::ostringstream out;
  CliOptions datasets;
  datasets.command = "datasets";
  ASSERT_TRUE(RunCli(datasets, out).ok());
  EXPECT_NE(out.str().find("road"), std::string::npos);
  EXPECT_NE(out.str().find("storage"), std::string::npos);

  std::ostringstream out2;
  CliOptions schemes;
  schemes.command = "schemes";
  ASSERT_TRUE(RunCli(schemes, out2).ok());
  EXPECT_NE(out2.str().find("psda"), std::string::npos);
  EXPECT_NE(out2.str().find("ug"), std::string::npos);
}

TEST(CliRunTest, EndToEndSyntheticRunWritesCsv) {
  const std::string output = ::testing::TempDir() + "/pldp_cli_counts.csv";
  const CliOptions options =
      ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.5",
                    "--scheme", "psda", "--setting", "S2E2", "--output",
                    output})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();
  EXPECT_NE(out.str().find("KL divergence"), std::string::npos);

  const auto contents = ReadFileToString(output);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("cell,row,col"), std::string::npos);
  std::remove(output.c_str());
}

TEST(CliRunTest, DegradeSweepRunsAndWritesCsv) {
  const std::string output = ::testing::TempDir() + "/pldp_cli_degradation.csv";
  const CliOptions options =
      ParseCliArgs({"degrade", "--dataset", "storage", "--scale", "0.5",
                    "--dropout-max", "0.4", "--dropout-steps", "2", "--runs",
                    "2", "--output", output})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();
  EXPECT_NE(out.str().find("degradation sweep"), std::string::npos);
  EXPECT_NE(out.str().find("dropout"), std::string::npos);

  const auto contents = ReadFileToString(output);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("dropout_rate"), std::string::npos);
  std::remove(output.c_str());
}

TEST(CliParseTest, ParsesMetricsOut) {
  const CliOptions options =
      ParseCliArgs({"run", "--dataset", "road", "--metrics-out", "/tmp/r.json"})
          .value();
  EXPECT_EQ(options.metrics_out, "/tmp/r.json");
}

TEST(CliRunTest, MetricsOutWritesRunReport) {
  const std::string report = ::testing::TempDir() + "/pldp_cli_run.json";
  const CliOptions options =
      ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.5",
                    "--metrics-out", report})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();
  EXPECT_NE(out.str().find("metrics written to"), std::string::npos);

  const auto contents = ReadFileToString(report);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("\"schema\":\"pldp.run_report/1\""),
            std::string::npos);
  EXPECT_NE(contents->find("\"tool\":\"pldp_cli\""), std::string::npos);
  EXPECT_NE(contents->find("\"command\":\"run\""), std::string::npos);
  EXPECT_NE(contents->find("\"dataset\":\"storage\""), std::string::npos);
  EXPECT_NE(contents->find("\"git_revision\""), std::string::npos);
  EXPECT_NE(contents->find("pcep.reports"), std::string::npos);
  EXPECT_NE(contents->find("psda.run"), std::string::npos);
  std::remove(report.c_str());
}

TEST(CliRunTest, MetricsOutPromSuffixWritesPrometheusText) {
  const std::string report = ::testing::TempDir() + "/pldp_cli_metrics.prom";
  const CliOptions options =
      ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.5",
                    "--metrics-out", report})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();

  const auto contents = ReadFileToString(report);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("# TYPE pldp_pcep_reports_total counter"),
            std::string::npos);
  EXPECT_NE(contents->find("pldp_accuracy_kl "), std::string::npos)
      << "accuracy gauges must reach the exposition";
  std::remove(report.c_str());

  // The degrade path exercises the protocol layer, whose response-rate
  // histogram must render as cumulative buckets ending at +Inf.
  const std::string degrade_report =
      ::testing::TempDir() + "/pldp_cli_degrade.prom";
  const CliOptions degrade =
      ParseCliArgs({"degrade", "--dataset", "storage", "--scale", "0.5",
                    "--dropout-max", "0.2", "--dropout-steps", "1", "--runs",
                    "1", "--metrics-out", degrade_report})
          .value();
  std::ostringstream degrade_out;
  ASSERT_TRUE(RunCli(degrade, degrade_out).ok()) << degrade_out.str();
  const auto degrade_contents = ReadFileToString(degrade_report);
  ASSERT_TRUE(degrade_contents.ok());
  EXPECT_NE(degrade_contents->find("_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(degrade_contents->find("_approx_quantile{quantile=\"0.5\"}"),
            std::string::npos);
  std::remove(degrade_report.c_str());
}

TEST(CliRunTest, MetricsOutTraceSuffixWritesChromeTrace) {
  const std::string report =
      ::testing::TempDir() + "/pldp_cli_metrics.trace.json";
  const CliOptions options =
      ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.5",
                    "--metrics-out", report})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();

  const auto contents = ReadFileToString(report);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(contents->find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(contents->find("\"name\":\"psda.run\""), std::string::npos);
  std::remove(report.c_str());
}

TEST(CliRunTest, MetricsOutCsvWritesFlatSnapshot) {
  const std::string report = ::testing::TempDir() + "/pldp_cli_metrics.csv";
  const CliOptions options =
      ParseCliArgs({"degrade", "--dataset", "storage", "--scale", "0.5",
                    "--dropout-max", "0.2", "--dropout-steps", "1", "--runs",
                    "1", "--metrics-out", report})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();

  const auto contents = ReadFileToString(report);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("kind,name,value"), std::string::npos);
  EXPECT_NE(contents->find("counter,degrade.points,"), std::string::npos);
  EXPECT_NE(contents->find("counter,protocol.collect_runs,"),
            std::string::npos);
  std::remove(report.c_str());
}

TEST(CliParseTest, ParsesChaosFlags) {
  const CliOptions options =
      ParseCliArgs({"chaos", "--dataset", "storage", "--scale", "0.5",
                    "--epochs", "5", "--ckpt-dir", "/tmp/ck", "--ckpt-every",
                    "8", "--crash-prob", "0.1", "--shed", "0.2", "--retries",
                    "4", "--output", "/tmp/chaos.csv"})
          .value();
  EXPECT_EQ(options.command, "chaos");
  EXPECT_EQ(options.epochs, 5u);
  EXPECT_EQ(options.ckpt_dir, "/tmp/ck");
  EXPECT_EQ(options.ckpt_every, 8u);
  EXPECT_DOUBLE_EQ(options.crash_prob, 0.1);
  EXPECT_DOUBLE_EQ(options.shed, 0.2);
  EXPECT_EQ(options.retries, 4u);
  EXPECT_EQ(options.output_csv, "/tmp/chaos.csv");
}

TEST(CliRunTest, ChaosRunOnCleanChannelReportsIdenticalRecovery) {
  const std::string ckpt_dir = ::testing::TempDir() + "/pldp_cli_chaos_ckpt";
  const std::string output = ::testing::TempDir() + "/pldp_cli_chaos.csv";
  const CliOptions options =
      ParseCliArgs({"chaos", "--dataset", "storage", "--scale", "0.5",
                    "--epochs", "2", "--ckpt-dir", ckpt_dir, "--ckpt-every",
                    "16", "--output", output})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();
  // Clean channel, no shedding: every epoch recovers bit-identical.
  EXPECT_NE(out.str().find("bit-identical"), std::string::npos);
  EXPECT_EQ(out.str().find("OUT OF BOUND"), std::string::npos) << out.str();

  const auto contents = ReadFileToString(output);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("crash_after"), std::string::npos);
  EXPECT_NE(contents->find("within_bound"), std::string::npos);
  std::remove(output.c_str());
  std::filesystem::remove_all(ckpt_dir);
}

TEST(CliRunTest, EndToEndCsvInputRun) {
  // Round-trip: write a tiny points file, aggregate it through the CLI.
  const std::string input = ::testing::TempDir() + "/pldp_cli_points.csv";
  std::string points;
  for (int i = 0; i < 200; ++i) {
    points += std::to_string(-120.0 + (i % 10)) + "," +
              std::to_string(30.0 + (i % 5)) + "\n";
  }
  ASSERT_TRUE(WriteStringToFile(input, points).ok());

  const CliOptions options =
      ParseCliArgs({"run", "--input", input, "--domain", "-121,29,-109,36",
                    "--cell", "1,1", "--scheme", "cloak"})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();
  EXPECT_NE(out.str().find("200 users"), std::string::npos);
  std::remove(input.c_str());
}

TEST(CliRunTest, AllSchemesRunThroughCli) {
  for (const char* scheme : {"kdtree", "sr", "ug"}) {
    const CliOptions options =
        ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.2",
                      "--scheme", scheme, "--setting", "S1E2"})
            .value();
    std::ostringstream out;
    EXPECT_TRUE(RunCli(options, out).ok()) << scheme << ": " << out.str();
    EXPECT_NE(out.str().find("KL divergence"), std::string::npos) << scheme;
  }
}

TEST(CliRunTest, RejectsInvalidCombinations) {
  std::ostringstream out;
  CliOptions no_input;
  no_input.command = "run";
  EXPECT_FALSE(RunCli(no_input, out).ok());

  CliOptions bad_scheme =
      ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.1",
                    "--scheme", "magic"})
          .value();
  EXPECT_FALSE(RunCli(bad_scheme, out).ok());

  CliOptions bad_setting =
      ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.1",
                    "--setting", "S9E9"})
          .value();
  EXPECT_FALSE(RunCli(bad_setting, out).ok());

  CliOptions missing_domain =
      ParseCliArgs({"run", "--input", "/nonexistent.csv"}).value();
  EXPECT_FALSE(RunCli(missing_domain, out).ok());
}

}  // namespace
}  // namespace pldp
