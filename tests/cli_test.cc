#include "cli/cli.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "geo/taxonomy.h"
#include "net/admin.h"
#include "net/client.h"
#include "net/wire.h"
#include "obs/json_reader.h"
#include "protocol/client.h"
#include "protocol/messages.h"
#include "util/csv.h"
#include "util/random.h"

namespace pldp {
namespace {

/// An ostream the serve test can read from one thread while RunCli writes
/// from another (std::ostringstream is not thread-safe for that).
class SyncStream : public std::ostream {
 public:
  SyncStream() : std::ostream(&buf_) {}
  std::string str() const { return buf_.str(); }

 private:
  class Buf : public std::streambuf {
   public:
    std::string str() const {
      std::lock_guard<std::mutex> lock(mu_);
      return text_;
    }

   protected:
    int overflow(int c) override {
      if (c != EOF) {
        std::lock_guard<std::mutex> lock(mu_);
        text_.push_back(static_cast<char>(c));
      }
      return c;
    }
    std::streamsize xsputn(const char* s, std::streamsize n) override {
      std::lock_guard<std::mutex> lock(mu_);
      text_.append(s, static_cast<size_t>(n));
      return n;
    }

   private:
    mutable std::mutex mu_;
    std::string text_;
  };
  Buf buf_;
};

/// Scrapes "<marker> 127.0.0.1:<port>" out of the serve banner; 0 if absent.
uint16_t PortAfter(const std::string& text, const std::string& marker) {
  const size_t at = text.find(marker);
  if (at == std::string::npos) return 0;
  const size_t line_end = text.find('\n', at);
  const size_t colon = text.rfind(':', line_end);
  if (colon == std::string::npos || colon < at) return 0;
  return static_cast<uint16_t>(std::atoi(text.c_str() + colon + 1));
}

TEST(CliParseTest, RejectsEmptyAndUnknown) {
  EXPECT_FALSE(ParseCliArgs({}).ok());
  EXPECT_FALSE(ParseCliArgs({"frobnicate"}).ok());
  EXPECT_FALSE(ParseCliArgs({"run", "--bogus"}).ok());
  EXPECT_FALSE(ParseCliArgs({"run", "--dataset"}).ok());  // missing value
}

TEST(CliParseTest, ParsesRunFlags) {
  const CliOptions options =
      ParseCliArgs({"run", "--dataset", "road", "--scheme", "kdtree",
                    "--setting", "S1E2", "--scale", "0.01", "--beta", "0.2",
                    "--seed", "99", "--output", "/tmp/x.csv"})
          .value();
  EXPECT_EQ(options.command, "run");
  EXPECT_EQ(options.dataset, "road");
  EXPECT_EQ(options.scheme, "kdtree");
  EXPECT_EQ(options.setting, "S1E2");
  EXPECT_DOUBLE_EQ(options.scale, 0.01);
  EXPECT_DOUBLE_EQ(options.beta, 0.2);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.output_csv, "/tmp/x.csv");
}

TEST(CliParseTest, ParsesDomainAndCell) {
  const CliOptions options =
      ParseCliArgs({"run", "--input", "p.csv", "--domain", "-125,25,-65,50",
                    "--cell", "1,0.5"})
          .value();
  EXPECT_EQ(options.input_csv, "p.csv");
  EXPECT_DOUBLE_EQ(options.domain[0], -125);
  EXPECT_DOUBLE_EQ(options.domain[3], 50);
  EXPECT_DOUBLE_EQ(options.cell_width, 1.0);
  EXPECT_DOUBLE_EQ(options.cell_height, 0.5);
  EXPECT_FALSE(
      ParseCliArgs({"run", "--domain", "1,2,3"}).ok());  // wrong arity
  EXPECT_FALSE(ParseCliArgs({"run", "--cell", "a,b"}).ok());
}

TEST(CliRunTest, ListsDatasetsAndSchemes) {
  std::ostringstream out;
  CliOptions datasets;
  datasets.command = "datasets";
  ASSERT_TRUE(RunCli(datasets, out).ok());
  EXPECT_NE(out.str().find("road"), std::string::npos);
  EXPECT_NE(out.str().find("storage"), std::string::npos);

  std::ostringstream out2;
  CliOptions schemes;
  schemes.command = "schemes";
  ASSERT_TRUE(RunCli(schemes, out2).ok());
  EXPECT_NE(out2.str().find("psda"), std::string::npos);
  EXPECT_NE(out2.str().find("ug"), std::string::npos);
}

TEST(CliRunTest, EndToEndSyntheticRunWritesCsv) {
  const std::string output = ::testing::TempDir() + "/pldp_cli_counts.csv";
  const CliOptions options =
      ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.5",
                    "--scheme", "psda", "--setting", "S2E2", "--output",
                    output})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();
  EXPECT_NE(out.str().find("KL divergence"), std::string::npos);

  const auto contents = ReadFileToString(output);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("cell,row,col"), std::string::npos);
  std::remove(output.c_str());
}

TEST(CliRunTest, DegradeSweepRunsAndWritesCsv) {
  const std::string output = ::testing::TempDir() + "/pldp_cli_degradation.csv";
  const CliOptions options =
      ParseCliArgs({"degrade", "--dataset", "storage", "--scale", "0.5",
                    "--dropout-max", "0.4", "--dropout-steps", "2", "--runs",
                    "2", "--output", output})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();
  EXPECT_NE(out.str().find("degradation sweep"), std::string::npos);
  EXPECT_NE(out.str().find("dropout"), std::string::npos);

  const auto contents = ReadFileToString(output);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("dropout_rate"), std::string::npos);
  std::remove(output.c_str());
}

TEST(CliParseTest, ParsesMetricsOut) {
  const CliOptions options =
      ParseCliArgs({"run", "--dataset", "road", "--metrics-out", "/tmp/r.json"})
          .value();
  EXPECT_EQ(options.metrics_out, "/tmp/r.json");
}

TEST(CliRunTest, MetricsOutWritesRunReport) {
  const std::string report = ::testing::TempDir() + "/pldp_cli_run.json";
  const CliOptions options =
      ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.5",
                    "--metrics-out", report})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();
  EXPECT_NE(out.str().find("metrics written to"), std::string::npos);

  const auto contents = ReadFileToString(report);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("\"schema\":\"pldp.run_report/1\""),
            std::string::npos);
  EXPECT_NE(contents->find("\"tool\":\"pldp_cli\""), std::string::npos);
  EXPECT_NE(contents->find("\"command\":\"run\""), std::string::npos);
  EXPECT_NE(contents->find("\"dataset\":\"storage\""), std::string::npos);
  EXPECT_NE(contents->find("\"git_revision\""), std::string::npos);
  EXPECT_NE(contents->find("pcep.reports"), std::string::npos);
  EXPECT_NE(contents->find("psda.run"), std::string::npos);
  std::remove(report.c_str());
}

TEST(CliRunTest, MetricsOutPromSuffixWritesPrometheusText) {
  const std::string report = ::testing::TempDir() + "/pldp_cli_metrics.prom";
  const CliOptions options =
      ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.5",
                    "--metrics-out", report})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();

  const auto contents = ReadFileToString(report);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("# TYPE pldp_pcep_reports_total counter"),
            std::string::npos);
  EXPECT_NE(contents->find("pldp_accuracy_kl "), std::string::npos)
      << "accuracy gauges must reach the exposition";
  std::remove(report.c_str());

  // The degrade path exercises the protocol layer, whose response-rate
  // histogram must render as cumulative buckets ending at +Inf.
  const std::string degrade_report =
      ::testing::TempDir() + "/pldp_cli_degrade.prom";
  const CliOptions degrade =
      ParseCliArgs({"degrade", "--dataset", "storage", "--scale", "0.5",
                    "--dropout-max", "0.2", "--dropout-steps", "1", "--runs",
                    "1", "--metrics-out", degrade_report})
          .value();
  std::ostringstream degrade_out;
  ASSERT_TRUE(RunCli(degrade, degrade_out).ok()) << degrade_out.str();
  const auto degrade_contents = ReadFileToString(degrade_report);
  ASSERT_TRUE(degrade_contents.ok());
  EXPECT_NE(degrade_contents->find("_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(degrade_contents->find("_approx_quantile{quantile=\"0.5\"}"),
            std::string::npos);
  std::remove(degrade_report.c_str());
}

TEST(CliRunTest, MetricsOutTraceSuffixWritesChromeTrace) {
  const std::string report =
      ::testing::TempDir() + "/pldp_cli_metrics.trace.json";
  const CliOptions options =
      ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.5",
                    "--metrics-out", report})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();

  const auto contents = ReadFileToString(report);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(contents->find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(contents->find("\"name\":\"psda.run\""), std::string::npos);
  std::remove(report.c_str());
}

TEST(CliRunTest, MetricsOutCsvWritesFlatSnapshot) {
  const std::string report = ::testing::TempDir() + "/pldp_cli_metrics.csv";
  const CliOptions options =
      ParseCliArgs({"degrade", "--dataset", "storage", "--scale", "0.5",
                    "--dropout-max", "0.2", "--dropout-steps", "1", "--runs",
                    "1", "--metrics-out", report})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();

  const auto contents = ReadFileToString(report);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("kind,name,value"), std::string::npos);
  EXPECT_NE(contents->find("counter,degrade.points,"), std::string::npos);
  EXPECT_NE(contents->find("counter,protocol.collect_runs,"),
            std::string::npos);
  std::remove(report.c_str());
}

TEST(CliParseTest, ParsesChaosFlags) {
  const CliOptions options =
      ParseCliArgs({"chaos", "--dataset", "storage", "--scale", "0.5",
                    "--epochs", "5", "--ckpt-dir", "/tmp/ck", "--ckpt-every",
                    "8", "--crash-prob", "0.1", "--shed", "0.2", "--retries",
                    "4", "--output", "/tmp/chaos.csv"})
          .value();
  EXPECT_EQ(options.command, "chaos");
  EXPECT_EQ(options.epochs, 5u);
  EXPECT_EQ(options.ckpt_dir, "/tmp/ck");
  EXPECT_EQ(options.ckpt_every, 8u);
  EXPECT_DOUBLE_EQ(options.crash_prob, 0.1);
  EXPECT_DOUBLE_EQ(options.shed, 0.2);
  EXPECT_EQ(options.retries, 4u);
  EXPECT_EQ(options.output_csv, "/tmp/chaos.csv");
}

TEST(CliRunTest, ChaosRunOnCleanChannelReportsIdenticalRecovery) {
  const std::string ckpt_dir = ::testing::TempDir() + "/pldp_cli_chaos_ckpt";
  const std::string output = ::testing::TempDir() + "/pldp_cli_chaos.csv";
  const CliOptions options =
      ParseCliArgs({"chaos", "--dataset", "storage", "--scale", "0.5",
                    "--epochs", "2", "--ckpt-dir", ckpt_dir, "--ckpt-every",
                    "16", "--output", output})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();
  // Clean channel, no shedding: every epoch recovers bit-identical.
  EXPECT_NE(out.str().find("bit-identical"), std::string::npos);
  EXPECT_EQ(out.str().find("OUT OF BOUND"), std::string::npos) << out.str();

  const auto contents = ReadFileToString(output);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("crash_after"), std::string::npos);
  EXPECT_NE(contents->find("within_bound"), std::string::npos);
  std::remove(output.c_str());
  std::filesystem::remove_all(ckpt_dir);
}

TEST(CliRunTest, EndToEndCsvInputRun) {
  // Round-trip: write a tiny points file, aggregate it through the CLI.
  const std::string input = ::testing::TempDir() + "/pldp_cli_points.csv";
  std::string points;
  for (int i = 0; i < 200; ++i) {
    points += std::to_string(-120.0 + (i % 10)) + "," +
              std::to_string(30.0 + (i % 5)) + "\n";
  }
  ASSERT_TRUE(WriteStringToFile(input, points).ok());

  const CliOptions options =
      ParseCliArgs({"run", "--input", input, "--domain", "-121,29,-109,36",
                    "--cell", "1,1", "--scheme", "cloak"})
          .value();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(options, out).ok()) << out.str();
  EXPECT_NE(out.str().find("200 users"), std::string::npos);
  std::remove(input.c_str());
}

TEST(CliRunTest, AllSchemesRunThroughCli) {
  for (const char* scheme : {"kdtree", "sr", "ug"}) {
    const CliOptions options =
        ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.2",
                      "--scheme", scheme, "--setting", "S1E2"})
            .value();
    std::ostringstream out;
    EXPECT_TRUE(RunCli(options, out).ok()) << scheme << ": " << out.str();
    EXPECT_NE(out.str().find("KL divergence"), std::string::npos) << scheme;
  }
}

TEST(CliRunTest, RejectsInvalidCombinations) {
  std::ostringstream out;
  CliOptions no_input;
  no_input.command = "run";
  EXPECT_FALSE(RunCli(no_input, out).ok());

  CliOptions bad_scheme =
      ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.1",
                    "--scheme", "magic"})
          .value();
  EXPECT_FALSE(RunCli(bad_scheme, out).ok());

  CliOptions bad_setting =
      ParseCliArgs({"run", "--dataset", "storage", "--scale", "0.1",
                    "--setting", "S9E9"})
          .value();
  EXPECT_FALSE(RunCli(bad_setting, out).ok());

  CliOptions missing_domain =
      ParseCliArgs({"run", "--input", "/nonexistent.csv"}).value();
  EXPECT_FALSE(RunCli(missing_domain, out).ok());
}

TEST(CliParseTest, ParsesServeIntrospectionFlags) {
  const CliOptions options =
      ParseCliArgs({"serve", "--dataset", "road", "--admin-port", "7788",
                    "--flight-out", "/tmp/flight.json", "--flight-events",
                    "1024"})
          .value();
  EXPECT_EQ(options.admin_port, 7788u);
  EXPECT_TRUE(options.admin_port_set);
  EXPECT_EQ(options.flight_out, "/tmp/flight.json");
  EXPECT_EQ(options.flight_events, 1024u);

  // The admin endpoint defaults to off, the ring to 65536 events.
  const CliOptions defaults =
      ParseCliArgs({"serve", "--dataset", "road"}).value();
  EXPECT_FALSE(defaults.admin_port_set);
  EXPECT_TRUE(defaults.flight_out.empty());
  EXPECT_EQ(defaults.flight_events, 65536u);

  EXPECT_FALSE(ParseCliArgs({"serve", "--admin-port", "70000"}).ok());
  EXPECT_FALSE(ParseCliArgs({"serve", "--flight-events", "0"}).ok());
}

TEST(CliParseTest, ParsesStatFlags) {
  const CliOptions options =
      ParseCliArgs({"stat", "--connect", "127.0.0.1:7787", "--watch", "2"})
          .value();
  EXPECT_EQ(options.command, "stat");
  EXPECT_EQ(options.connect, "127.0.0.1:7787");
  EXPECT_EQ(options.watch, 2u);

  EXPECT_FALSE(ParseCliArgs({"stat", "--watch", "4000"}).ok());

  // stat without a target, or with a malformed one, fails before connecting.
  std::ostringstream out;
  CliOptions no_target;
  no_target.command = "stat";
  EXPECT_FALSE(RunCli(no_target, out).ok());
  CliOptions bad_target;
  bad_target.command = "stat";
  bad_target.connect = "localhost";  // no port
  EXPECT_FALSE(RunCli(bad_target, out).ok());
  bad_target.connect = "localhost:0";
  EXPECT_FALSE(RunCli(bad_target, out).ok());
}

// End-to-end introspection pass over a real `serve --once` daemon: the live
// banner yields both ports, `stat` renders the control-frame view, the admin
// endpoint serves Prometheus text and status JSON mid-run, SIGUSR1 dumps the
// flight recorder, and the graceful exit honors --metrics-out (the serve
// regression this PR pins down) and writes the shutdown flight dump.
TEST(CliRunTest, ServeOnceIntrospectionEndToEnd) {
  const std::string prom = ::testing::TempDir() + "/pldp_cli_serve.prom";
  const std::string flight = ::testing::TempDir() + "/pldp_cli_flight.json";
  std::remove(prom.c_str());
  std::remove(flight.c_str());

  const CliOptions serve_options =
      ParseCliArgs({"serve", "--dataset", "storage", "--scale", "0.5",
                    "--port", "0", "--once", "--metrics-out", prom,
                    "--admin-port", "0", "--flight-out", flight,
                    "--flight-events", "4096"})
          .value();
  SyncStream serve_out;
  Status serve_status = Status::OK();
  std::thread daemon([&] { serve_status = RunCli(serve_options, serve_out); });

  uint16_t port = 0;
  uint16_t admin_port = 0;
  for (int i = 0; i < 1000 && (port == 0 || admin_port == 0); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const std::string text = serve_out.str();
    port = PortAfter(text, "pldp daemon listening on");
    admin_port = PortAfter(text, "admin endpoint listening on");
  }
  ASSERT_GT(port, 0) << serve_out.str();
  ASSERT_GT(admin_port, 0) << serve_out.str();

  // `stat` against the fresh daemon: phase is collecting specs.
  {
    const CliOptions stat_options =
        ParseCliArgs({"stat", "--connect",
                      "127.0.0.1:" + std::to_string(port)})
            .value();
    std::ostringstream stat_out;
    ASSERT_TRUE(RunCli(stat_options, stat_out).ok()) << stat_out.str();
    EXPECT_NE(stat_out.str().find("collecting specs"), std::string::npos)
        << stat_out.str();
    EXPECT_NE(stat_out.str().find("sockets"), std::string::npos);
  }

  // Drive one epoch over the daemon's own taxonomy derivation.
  const Dataset dataset = GenerateByName("storage", 0.5, 2016).value();
  const UniformGrid grid = dataset.MakeGrid().value();
  const SpatialTaxonomy tax = SpatialTaxonomy::Build(grid, 4).value();
  const size_t n = 24;
  net::NetClient conn;
  ASSERT_TRUE(conn.Connect("127.0.0.1", port).ok());
  for (size_t i = 0; i < n; ++i) {
    SpecUploadMsg msg;
    msg.safe_region = tax.root();
    msg.epsilon = 1.0;
    const auto accepted = conn.UploadSpec(i, msg);
    ASSERT_TRUE(accepted.ok()) << accepted.status();
  }
  ASSERT_TRUE(conn.SealSpecs(n).ok());

  // Mid-epoch: SIGUSR1 must produce a flight dump without stopping ingest.
  ASSERT_EQ(std::raise(SIGUSR1), 0);
  for (int i = 0; i < 500; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (serve_out.str().find("flight recorder dump (SIGUSR1)") !=
        std::string::npos) {
      break;
    }
  }
  EXPECT_NE(serve_out.str().find("flight recorder dump (SIGUSR1)"),
            std::string::npos)
      << serve_out.str();

  // Mid-epoch admin scrape: live metric families + parseable status JSON.
  const auto metrics = net::HttpGet("127.0.0.1", admin_port, "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->status_code, 200);
  EXPECT_NE(metrics->body.find("pldp_net_specs_accepted_total"),
            std::string::npos);
  const auto status_doc = net::HttpGet("127.0.0.1", admin_port, "/status");
  ASSERT_TRUE(status_doc.ok());
  const auto parsed = obs::ParseJson(status_doc->body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->StringOr("schema", ""), "pldp.status/1");
  const obs::JsonValue* epoch = parsed->Find("epoch");
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->NumberOr("specs_accepted", -1), static_cast<double>(n));

  for (size_t i = 0; i < n; ++i) {
    const auto assignment = conn.FetchAssignment(i);
    ASSERT_TRUE(assignment.ok()) << assignment.status();
    DeviceClient device(&tax, static_cast<CellId>(i % grid.num_cells()),
                        PrivacySpec{tax.root(), 1.0},
                        SplitMix64(2016 ^ (i + 1)));
    const auto reply = device.HandleRowAssignment(assignment->Serialize());
    ASSERT_TRUE(reply.ok());
    const auto outcome =
        conn.SubmitReport(i, ReportMsg::Parse(reply.value()).value());
    ASSERT_TRUE(outcome.ok()) << outcome.status();
  }
  ASSERT_TRUE(conn.SealEpoch().ok());
  const auto estimates = conn.FetchEstimates();
  ASSERT_TRUE(estimates.ok()) << estimates.status();

  daemon.join();
  ASSERT_TRUE(serve_status.ok()) << serve_status.ToString();
  const std::string text = serve_out.str();
  EXPECT_NE(text.find("epoch published"), std::string::npos) << text;
  EXPECT_NE(text.find("flight recorder dump (shutdown)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("metrics written to"), std::string::npos) << text;

  // --metrics-out survived the serve path: the snapshot carries the daemon's
  // own metric families in Prometheus text form.
  const auto prom_text = ReadFileToString(prom);
  ASSERT_TRUE(prom_text.ok());
  EXPECT_NE(prom_text->find("pldp_net_reports_staged_total"),
            std::string::npos);
  EXPECT_NE(prom_text->find("pldp_net_ingest_latency_report_ms_count"),
            std::string::npos);

  // The shutdown flight dump is a loadable Chrome trace with real events.
  const auto flight_text = ReadFileToString(flight);
  ASSERT_TRUE(flight_text.ok());
  const auto flight_doc = obs::ParseJson(*flight_text);
  ASSERT_TRUE(flight_doc.ok()) << flight_doc.status();
  EXPECT_GT(flight_doc->NumberOr("pldp_flight_recorded", 0), 0.0);
  ASSERT_NE(flight_doc->Find("traceEvents"), nullptr);
  EXPECT_GT(flight_doc->Find("traceEvents")->array_items().size(), 1u);

  std::remove(prom.c_str());
  std::remove(flight.c_str());
}

}  // namespace
}  // namespace pldp
