// Fault-injection transport: reproducible fault schedules, the zero-cost
// reliable default path, retry/backoff accounting, duplicate dedup, and the
// dropout-aware rescaling that keeps the estimator unbiased under
// missing-completely-at-random loss.

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/psda.h"
#include "protocol/channel.h"
#include "protocol/client.h"
#include "protocol/messages.h"
#include "protocol/server.h"
#include "util/random.h"

namespace pldp {
namespace {

SpatialTaxonomy MakeTaxonomy(uint32_t side = 8) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, static_cast<double>(side),
                                      static_cast<double>(side)},
                          1, 1)
          .value();
  return SpatialTaxonomy::Build(grid, 4).value();
}

std::vector<DeviceClient> MakeClients(const SpatialTaxonomy& tax, size_t n,
                                      uint64_t seed,
                                      std::vector<double>* truth = nullptr) {
  Rng rng(seed);
  std::vector<DeviceClient> clients;
  clients.reserve(n);
  if (truth != nullptr) truth->assign(tax.grid().num_cells(), 0.0);
  const double epsilons[] = {0.5, 1.0};
  for (size_t i = 0; i < n; ++i) {
    const auto cell =
        static_cast<CellId>(rng.NextUint64(tax.grid().num_cells()));
    const uint32_t level = static_cast<uint32_t>(rng.NextUint64(3));
    PrivacySpec spec;
    spec.safe_region = tax.AncestorAbove(tax.LeafNodeOfCell(cell), level);
    spec.epsilon = epsilons[rng.NextUint64(2)];
    clients.emplace_back(&tax, cell, spec, SplitMix64(seed ^ (i + 1)));
    if (truth != nullptr) (*truth)[cell] += 1.0;
  }
  return clients;
}

double MeanAbsError(const std::vector<double>& truth,
                    const std::vector<double>& estimate) {
  double sum = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    sum += std::fabs(estimate[i] - truth[i]);
  }
  return sum / static_cast<double>(truth.size());
}

TEST(FaultyChannelTest, InactiveChannelIsPassthrough) {
  FaultyChannel channel;  // default spec: no faults
  EXPECT_FALSE(channel.active());
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const Delivery d = channel.Transfer(payload);
  EXPECT_TRUE(d.delivered());
  EXPECT_EQ(d.bytes, payload);
  EXPECT_EQ(d.copies(), 1);
  EXPECT_FALSE(d.corrupted);
  EXPECT_FALSE(d.duplicated);
  EXPECT_DOUBLE_EQ(d.latency_ms, 0.0);
  EXPECT_TRUE(d.ToStatus().ok());
}

TEST(FaultyChannelTest, FaultScheduleIsSeedDeterministic) {
  FaultSpec spec;
  spec.drop_probability = 0.3;
  spec.corrupt_probability = 0.2;
  spec.truncate_probability = 0.1;
  spec.duplicate_probability = 0.2;
  spec.mean_latency_ms = 5.0;
  spec.deadline_ms = 20.0;
  spec.seed = 77;
  FaultyChannel a(spec), b(spec);
  const std::vector<uint8_t> payload(32, 0xAB);
  for (int i = 0; i < 500; ++i) {
    const Delivery da = a.Transfer(payload);
    const Delivery db = b.Transfer(payload);
    EXPECT_EQ(da.outcome, db.outcome);
    EXPECT_EQ(da.bytes, db.bytes);
    EXPECT_EQ(da.duplicated, db.duplicated);
    EXPECT_DOUBLE_EQ(da.latency_ms, db.latency_ms);
  }
}

TEST(FaultyChannelTest, DropRateMatchesSpecApproximately) {
  FaultSpec spec;
  spec.drop_probability = 0.25;
  FaultyChannel channel(spec);
  int lost = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (!channel.Transfer({0x00}).delivered()) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / trials, 0.25, 0.02);
}

TEST(FaultyChannelTest, LostDeliveriesSurfaceDeadlineExceeded) {
  FaultSpec spec;
  spec.drop_probability = 1.0;
  spec.deadline_ms = 100.0;
  FaultyChannel channel(spec);
  const Delivery d = channel.Transfer({1, 2, 3});
  EXPECT_EQ(d.outcome, DeliveryOutcome::kDropped);
  EXPECT_TRUE(d.bytes.empty());
  EXPECT_DOUBLE_EQ(d.latency_ms, 100.0);  // sender waited out the deadline
  EXPECT_EQ(d.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(FaultyChannelTest, SlowMessagesTimeOutAgainstDeadline) {
  FaultSpec spec;
  spec.mean_latency_ms = 50.0;
  spec.deadline_ms = 1.0;  // almost every exponential draw exceeds this
  FaultyChannel channel(spec);
  int timeouts = 0;
  for (int i = 0; i < 200; ++i) {
    const Delivery d = channel.Transfer({9});
    if (d.outcome == DeliveryOutcome::kTimedOut) {
      ++timeouts;
      EXPECT_EQ(d.ToStatus().code(), StatusCode::kDeadlineExceeded);
    }
  }
  EXPECT_GT(timeouts, 150);
}

TEST(FaultyChannelTest, MangleBytesCorruptsOrTruncates) {
  Rng rng(11);
  const std::vector<uint8_t> original(64, 0x5A);
  std::vector<uint8_t> corrupt = original;
  FaultyChannel::MangleBytes(&corrupt, /*corrupt=*/true, /*truncate=*/false,
                             &rng);
  EXPECT_EQ(corrupt.size(), original.size());
  EXPECT_NE(corrupt, original);

  std::vector<uint8_t> truncated = original;
  FaultyChannel::MangleBytes(&truncated, /*corrupt=*/false, /*truncate=*/true,
                             &rng);
  EXPECT_LT(truncated.size(), original.size());

  std::vector<uint8_t> empty;
  FaultyChannel::MangleBytes(&empty, true, true, &rng);  // must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(JitteredBackoffTest, GrowsGeometricallyWithinJitterBand) {
  Rng rng(3);
  for (uint32_t attempt = 1; attempt <= 5; ++attempt) {
    const double nominal = 50.0 * std::pow(2.0, attempt - 1);
    for (int i = 0; i < 100; ++i) {
      const double delay = JitteredBackoffMs(50.0, 2.0, attempt, 0.5, &rng);
      EXPECT_GE(delay, nominal * 0.5);
      EXPECT_LE(delay, nominal * 1.5);
    }
  }
  EXPECT_DOUBLE_EQ(JitteredBackoffMs(0.0, 2.0, 3, 0.5, &rng), 0.0);
}

// Acceptance: with faults disabled, the fault-aware Collect is byte-identical
// to the channel-free (seed) implementation - results and stats.
TEST(FaultInjectionCollectTest, DisabledFaultsMatchReliablePathExactly) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients_plain = MakeClients(tax, 1500, 42);
  auto clients_faultless = MakeClients(tax, 1500, 42);

  AggregationServer plain(&tax, PsdaOptions());
  AggregationServer faultless(&tax, PsdaOptions(), FaultSpec{}, RetryPolicy{});
  ProtocolStats stats_plain, stats_faultless;
  const PsdaResult a = plain.Collect(&clients_plain, &stats_plain).value();
  const PsdaResult b =
      faultless.Collect(&clients_faultless, &stats_faultless).value();

  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.raw_counts, b.raw_counts);
  EXPECT_TRUE(stats_plain == stats_faultless);
  EXPECT_EQ(stats_plain.dropped_clients, 0u);
  EXPECT_EQ(stats_plain.retries, 0u);
  EXPECT_EQ(stats_plain.spec_responders, 1500u);
  EXPECT_DOUBLE_EQ(stats_plain.global_rescale, 1.0);
  for (const ClusterResponseStats& cluster : stats_plain.cluster_response) {
    EXPECT_EQ(cluster.n_expected, cluster.n_responded);
    EXPECT_DOUBLE_EQ(cluster.response_rate, 1.0);
    EXPECT_GT(cluster.error_bound, 0.0);
  }
}

// Acceptance: identical seed + identical FaultSpec => bit-identical result
// and stats across two runs.
TEST(FaultInjectionCollectTest, DeterministicUnderIdenticalFaultSpec) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  FaultSpec faults;
  faults.drop_probability = 0.15;
  faults.corrupt_probability = 0.1;
  faults.truncate_probability = 0.05;
  faults.duplicate_probability = 0.1;
  faults.mean_latency_ms = 3.0;
  faults.deadline_ms = 25.0;
  faults.seed = 2024;

  auto clients_a = MakeClients(tax, 1200, 99);
  auto clients_b = MakeClients(tax, 1200, 99);
  AggregationServer server(&tax, PsdaOptions(), faults);
  ProtocolStats stats_a, stats_b;
  const PsdaResult a = server.Collect(&clients_a, &stats_a).value();
  const PsdaResult b = server.Collect(&clients_b, &stats_b).value();

  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.raw_counts, b.raw_counts);
  EXPECT_TRUE(stats_a == stats_b);
  // The schedule actually injected something.
  EXPECT_GT(stats_a.dropped_messages + stats_a.timeouts, 0u);
  EXPECT_GT(stats_a.retries, 0u);
}

// Acceptance: duplicate replies are never double-counted - a duplication-only
// channel yields exactly the counts of the reliable run.
TEST(FaultInjectionCollectTest, DuplicatesAreDedupedExactly) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients_reliable = MakeClients(tax, 1000, 7);
  auto clients_duped = MakeClients(tax, 1000, 7);

  FaultSpec faults;
  faults.duplicate_probability = 0.6;
  faults.seed = 5;

  AggregationServer reliable(&tax, PsdaOptions());
  AggregationServer duped(&tax, PsdaOptions(), faults);
  ProtocolStats stats;
  const PsdaResult a = reliable.Collect(&clients_reliable, nullptr).value();
  const PsdaResult b = duped.Collect(&clients_duped, &stats).value();

  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.raw_counts, b.raw_counts);
  EXPECT_GT(stats.duplicate_reports, 0u);
  EXPECT_EQ(stats.dropped_clients, 0u);
  // Every duplicated copy was accounted as traffic, never as signal.
  EXPECT_GT(stats.messages_to_server, 2000u);
}

// Acceptance: at 20% injected dropout the rescaled counts stay unbiased -
// mean relative error within 2x of the no-fault run, averaged over 5 seeds.
TEST(FaultInjectionCollectTest, DropoutRescalingKeepsEstimateUnbiased) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 4000;
  double clean_mae_sum = 0.0;
  double faulty_mae_sum = 0.0;
  double total_sum = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<double> truth;
    auto clients_clean = MakeClients(tax, n, seed, &truth);
    auto clients_faulty = MakeClients(tax, n, seed);

    PsdaOptions psda;
    psda.seed = SplitMix64(seed);
    AggregationServer clean(&tax, psda);
    const PsdaResult clean_result =
        clean.Collect(&clients_clean, nullptr).value();

    FaultSpec faults;
    faults.drop_probability = 0.2;
    faults.seed = SplitMix64(seed ^ 0xFA17ULL);
    AggregationServer faulty(&tax, psda, faults);
    ProtocolStats stats;
    const PsdaResult faulty_result =
        faulty.Collect(&clients_faulty, &stats).value();

    clean_mae_sum += MeanAbsError(truth, clean_result.counts);
    faulty_mae_sum += MeanAbsError(truth, faulty_result.counts);
    total_sum += std::accumulate(faulty_result.counts.begin(),
                                 faulty_result.counts.end(), 0.0);
    EXPECT_GT(stats.retries, 0u);
    EXPECT_GT(stats.dropped_messages, 0u);
  }
  // Unbiasedness of the rescaled estimator: error within 2x of the clean run
  // and total mass preserved.
  EXPECT_LE(faulty_mae_sum, 2.0 * clean_mae_sum)
      << "clean " << clean_mae_sum / 5 << " vs faulty " << faulty_mae_sum / 5;
  EXPECT_NEAR(total_sum / 5.0, static_cast<double>(n), 0.05 * n);
}

// Without retries, 20% per-leg dropout compounds to ~36% lost users; the
// per-cluster n/n_resp rescale must still preserve total mass.
TEST(FaultInjectionCollectTest, RescaleAlonePreservesMassWithoutRetries) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 4000;
  double total_sum = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto clients = MakeClients(tax, n, 100 + seed);
    FaultSpec faults;
    faults.drop_probability = 0.2;
    faults.seed = SplitMix64(seed);
    RetryPolicy no_retries;
    no_retries.max_attempts = 1;
    PsdaOptions psda;
    psda.seed = SplitMix64(seed ^ 0xABCDULL);
    AggregationServer server(&tax, psda, faults, no_retries);
    ProtocolStats stats;
    const PsdaResult result = server.Collect(&clients, &stats).value();
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_GT(stats.dropped_clients, n / 5);
    total_sum += std::accumulate(result.counts.begin(), result.counts.end(),
                                 0.0);
  }
  EXPECT_NEAR(total_sum / 5.0, static_cast<double>(n), 0.08 * n);
}

TEST(FaultInjectionCollectTest, RetriesRecoverMostDrops) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 2000;
  auto clients = MakeClients(tax, n, 55);
  FaultSpec faults;
  faults.drop_probability = 0.2;
  faults.seed = 9;
  RetryPolicy retry;
  retry.max_attempts = 4;
  AggregationServer server(&tax, PsdaOptions(), faults, retry);
  ProtocolStats stats;
  (void)server.Collect(&clients, &stats).value();
  // Per-attempt round-trip failure ~= 0.36; after 4 attempts < 2% of users
  // should be lost.
  EXPECT_LT(stats.dropped_clients, n / 25);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.simulated_latency_ms, 0.0);  // backoff was charged
}

TEST(FaultInjectionCollectTest, TotalBlackoutReturnsDeadlineExceeded) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients = MakeClients(tax, 50, 3);
  FaultSpec faults;
  faults.drop_probability = 1.0;
  AggregationServer server(&tax, PsdaOptions(), faults);
  const auto result = server.Collect(&clients, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(FaultInjectionCollectTest, CorruptionIsCountedAndSurvived) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients = MakeClients(tax, 800, 21);
  FaultSpec faults;
  faults.corrupt_probability = 0.3;
  faults.truncate_probability = 0.1;
  faults.seed = 13;
  RetryPolicy retry;
  retry.max_attempts = 4;
  AggregationServer server(&tax, PsdaOptions(), faults, retry);
  ProtocolStats stats;
  const PsdaResult result = server.Collect(&clients, &stats).value();
  EXPECT_GT(stats.corrupt_parses, 0u);
  // Corruption wastes attempts but retries keep most clients in. Some loss
  // is irreducible here: a spec whose safe_region was bit-flipped into
  // another valid node gets the client clustered wrongly, and the device
  // then (correctly) refuses a protocol that does not cover its real safe
  // region - those surface as refused_assignments.
  EXPECT_LT(stats.dropped_clients, 800u / 5);
  EXPECT_GT(stats.refused_assignments, 0u);
  // Corruption injects estimation noise (flipped report signs, perturbations
  // against mangled rows) but must never destroy the estimate: every count
  // stays finite and the total mass lands within a loose band of the cohort
  // size. Exact totals are not pinned - consistency redistributes mass but
  // does not anchor the root to n under PCEP noise.
  double total = 0.0;
  for (const double v : result.counts) {
    ASSERT_TRUE(std::isfinite(v));
    total += v;
  }
  const double expected = 800.0 * stats.global_rescale;
  EXPECT_GT(total, 0.25 * expected);
  EXPECT_LT(total, 4.0 * expected);
}

TEST(FaultInjectionCollectTest, ClusterResponseStatsTrackDropout) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients = MakeClients(tax, 2000, 31);
  FaultSpec faults;
  faults.drop_probability = 0.3;
  faults.seed = 17;
  RetryPolicy no_retries;
  no_retries.max_attempts = 1;
  AggregationServer server(&tax, PsdaOptions(), faults, no_retries);
  ProtocolStats stats;
  (void)server.Collect(&clients, &stats).value();

  ASSERT_FALSE(stats.cluster_response.empty());
  uint64_t responded = 0, expected = 0;
  for (const ClusterResponseStats& cluster : stats.cluster_response) {
    EXPECT_LE(cluster.n_responded, cluster.n_expected);
    EXPECT_GT(cluster.error_bound, 0.0);
    responded += cluster.n_responded;
    expected += cluster.n_expected;
  }
  // ~51% of users survive two 0.3-drop legs with no retries.
  EXPECT_LT(responded, expected);
  EXPECT_GT(stats.dropped_clients, 0u);
  EXPECT_LT(stats.global_rescale, 1.5);
  EXPECT_GT(stats.global_rescale, 1.0);
}

TEST(DeviceClientDedupTest, RetransmissionServedFromCacheDifferentRefused) {
  const SpatialTaxonomy tax = MakeTaxonomy(4);
  DeviceClient client(&tax, 3, PrivacySpec{tax.root(), 1.0}, 71);
  EXPECT_FALSE(client.has_reported());

  PcepParams params;
  params.seed = 15;
  PcepServer pcep =
      PcepServer::Create(tax.RegionSize(tax.root()), 100, params).value();
  RowAssignmentMsg msg;
  msg.region = tax.root();
  msg.m = pcep.m();
  msg.row_index = 4;
  msg.row_bits = pcep.sign_matrix().Row(4);
  const std::vector<uint8_t> wire = msg.Serialize();

  const auto first = client.HandleRowAssignment(wire);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(client.has_reported());

  // Identical retransmission: identical cached bytes, no fresh perturbation.
  const auto again = client.HandleRowAssignment(wire);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first.value(), again.value());

  // A retransmission for the same region is served from the cache even when
  // its bytes differ (the answered copy may have been the corrupted one);
  // the device never draws fresh randomness.
  msg.row_index = 5;
  msg.row_bits = pcep.sign_matrix().Row(5);
  const std::vector<uint8_t> same_region = msg.Serialize();
  const auto cached = client.HandleRowAssignment(same_region);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(first.value(), cached.value());

  // An assignment naming a different protocol region after reporting is
  // refused outright.
  RowAssignmentMsg other_msg = msg;
  other_msg.region = static_cast<NodeId>(tax.num_nodes() - 1);  // a leaf
  other_msg.row_bits = BitVector(tax.RegionSize(other_msg.region));
  const auto other = client.HandleRowAssignment(other_msg.Serialize());
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.status().code(), StatusCode::kFailedPrecondition);

  // Reset clears the round: the device may participate again.
  client.ResetReport();
  EXPECT_FALSE(client.has_reported());
  EXPECT_TRUE(client.HandleRowAssignment(same_region).ok());
}

TEST(FaultyChannelCrashTest, CrashFaultAbortsDeliveryWithoutDeadlineWait) {
  FaultSpec spec;
  spec.crash_probability = 1.0;
  spec.deadline_ms = 50.0;
  spec.seed = 7;
  EXPECT_TRUE(spec.any_faults());
  FaultyChannel channel(spec);

  const Delivery d = channel.Transfer({1, 2, 3});
  EXPECT_EQ(d.outcome, DeliveryOutcome::kCrashed);
  EXPECT_FALSE(d.delivered());
  EXPECT_EQ(d.copies(), 0);
  EXPECT_TRUE(d.bytes.empty());
  // A crash is a connection reset, not silence: the sender observes it
  // immediately, so the latency is never clamped to the deadline.
  EXPECT_LT(d.latency_ms, spec.deadline_ms);
}

TEST(FaultyChannelCrashTest, DeliveryOutcomeToStatusCoversEveryOutcome) {
  Delivery d;
  d.outcome = DeliveryOutcome::kDelivered;
  EXPECT_TRUE(d.ToStatus().ok());
  d.outcome = DeliveryOutcome::kDropped;
  EXPECT_EQ(d.ToStatus().code(), StatusCode::kDeadlineExceeded);
  d.outcome = DeliveryOutcome::kTimedOut;
  EXPECT_EQ(d.ToStatus().code(), StatusCode::kDeadlineExceeded);
  d.outcome = DeliveryOutcome::kCrashed;
  EXPECT_EQ(d.ToStatus().code(), StatusCode::kAborted);
}

TEST(FaultyChannelCrashTest, CrashRateMatchesSpecApproximately) {
  FaultSpec spec;
  spec.crash_probability = 0.3;
  spec.seed = 11;
  FaultyChannel channel(spec);
  int crashed = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    if (channel.Transfer({42}).outcome == DeliveryOutcome::kCrashed) {
      ++crashed;
    }
  }
  EXPECT_NEAR(static_cast<double>(crashed) / trials, 0.3, 0.03);
}

TEST(FaultInjectionCollectTest, CrashFaultsAreRetriedAndCounted) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  std::vector<double> truth;
  auto clients = MakeClients(tax, 2000, 97, &truth);

  FaultSpec faults;
  faults.crash_probability = 0.2;
  faults.seed = 5;
  RetryPolicy retry;
  retry.max_attempts = 6;

  AggregationServer server(&tax, PsdaOptions(), faults, retry);
  ProtocolStats stats;
  const PsdaResult result = server.Collect(&clients, &stats).value();

  // Crashes are observed (counted) losses recovered through the regular
  // retry policy, so nearly everyone still lands.
  EXPECT_GT(stats.crashed_deliveries, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.dropped_messages, 0u);
  EXPECT_LT(stats.dropped_clients, 2000u / 50);
  const double total =
      std::accumulate(result.counts.begin(), result.counts.end(), 0.0);
  EXPECT_NEAR(total, 2000.0, 2000.0 * 0.05);
}

}  // namespace
}  // namespace pldp
