#include "core/local_randomizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/error_model.h"

namespace pldp {
namespace {

TEST(LocalRandomizerTest, RejectsInvalidInputs) {
  Rng rng(1);
  EXPECT_FALSE(LocalRandomize(true, 100, 0.0, &rng).ok());
  EXPECT_FALSE(LocalRandomize(true, 100, -1.0, &rng).ok());
  EXPECT_FALSE(LocalRandomize(true, 0, 1.0, &rng).ok());
}

TEST(LocalRandomizerTest, OutputHasFixedMagnitude) {
  Rng rng(2);
  const uint64_t m = 256;
  const double eps = 0.7;
  const double magnitude = CEpsilon(eps) * std::sqrt(static_cast<double>(m));
  for (int i = 0; i < 1000; ++i) {
    const double z = LocalRandomize(i % 2 == 0, m, eps, &rng).value();
    EXPECT_NEAR(std::fabs(z), magnitude, 1e-9);
  }
}

TEST(LocalRandomizerTest, RowWrapperSelectsCorrectBit) {
  Rng rng(3);
  BitVector row(10);
  row.Set(3, true);
  // With a huge epsilon the randomizer keeps the sign almost surely.
  const double z_pos = LocalRandomizeRow(row, 3, 64, 30.0, &rng).value();
  const double z_neg = LocalRandomizeRow(row, 4, 64, 30.0, &rng).value();
  EXPECT_GT(z_pos, 0.0);
  EXPECT_LT(z_neg, 0.0);
  EXPECT_FALSE(LocalRandomizeRow(row, 10, 64, 1.0, &rng).ok());
}

/// Property sweep over the paper's epsilon menu (E1 union E2).
class LocalRandomizerPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(LocalRandomizerPropertyTest, KeepProbabilityMatchesTheory) {
  const double eps = GetParam();
  Rng rng(42);
  const uint64_t m = 128;
  const int n = 200000;
  int kept = 0;
  for (int i = 0; i < n; ++i) {
    if (LocalRandomize(true, m, eps, &rng).value() > 0) ++kept;
  }
  const double expected = std::exp(eps) / (std::exp(eps) + 1.0);
  EXPECT_NEAR(static_cast<double>(kept) / n, expected, 0.005) << "eps " << eps;
  EXPECT_NEAR(LrKeepProbability(eps), expected, 1e-12);
}

TEST_P(LocalRandomizerPropertyTest, SatisfiesPldpRatioEmpirically) {
  // Definition 3.2 applied to LR (Theorem 4.2): for the two possible inputs
  // (the bit of location l vs the bit of location l'), the probability of any
  // output must differ by at most e^eps. The worst case is opposite bits.
  const double eps = GetParam();
  Rng rng_a(7), rng_b(8);
  const uint64_t m = 128;
  const int n = 400000;
  int positive_a = 0, positive_b = 0;
  for (int i = 0; i < n; ++i) {
    if (LocalRandomize(true, m, eps, &rng_a).value() > 0) ++positive_a;
    if (LocalRandomize(false, m, eps, &rng_b).value() > 0) ++positive_b;
  }
  const double pa = static_cast<double>(positive_a) / n;
  const double pb = static_cast<double>(positive_b) / n;
  // Two-sided bound with a small sampling slack.
  EXPECT_LE(pa / pb, std::exp(eps) * 1.05) << "eps " << eps;
  EXPECT_LE((1 - pb) / (1 - pa), std::exp(eps) * 1.05) << "eps " << eps;
  // And the ratio should be essentially tight (LR uses the whole budget).
  EXPECT_GE(pa / pb, std::exp(eps) * 0.95) << "eps " << eps;
}

TEST_P(LocalRandomizerPropertyTest, UnbiasedAfterDebiasing) {
  // E[z] = sqrt(m) * sign = m * x (Theorem 4.3 before the 1/m row-sampling
  // correction).
  const double eps = GetParam();
  Rng rng(11);
  const uint64_t m = 64;
  const int n = 400000;
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += LocalRandomize(true, m, eps, &rng).value();
  }
  const double mean = total / n;
  const double expected = std::sqrt(static_cast<double>(m));
  // Standard error ~ c_eps * sqrt(m) / sqrt(n).
  const double slack =
      4.0 * CEpsilon(eps) * std::sqrt(static_cast<double>(m) / n);
  EXPECT_NEAR(mean, expected, slack) << "eps " << eps;
}

INSTANTIATE_TEST_SUITE_P(EpsilonMenu, LocalRandomizerPropertyTest,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0, 1.25, 2.0));

}  // namespace
}  // namespace pldp
