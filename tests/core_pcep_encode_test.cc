// Parity + determinism suite for the dispatched encode kernels, mirroring
// core_pcep_simd_test on the client side of Algorithm 1: the AVX2 closed-form
// kernel against the scalar (sequential reference) kernel — bit-identical,
// exact == — over tau sizes that hit the word-tail boundaries and over user
// counts that hit the 8-user main loop, the single-4 group, and the scalar
// straggler tail; a hand-rolled SignAt + LocalRandomize loop pinning the
// scalar kernel itself; RunPcepCollection transcript identity across kernels,
// chunk counts, and PLDP_TOPOLOGY_GROUPS shard counts; the
// PLDP_ENCODE_KERNEL override round-trip (including the avx512 token, which
// the encode family does not implement and must fall back from); the shared
// abort flag on an invalid-epsilon user mid-cohort; BatchKeepDecisions
// against the per-device Rng reference; ComputeLrConstants edges; and
// counter parity between kernels. Every AVX2 assertion skips gracefully when
// the kernel is unavailable (non-x86 or PLDP_ENABLE_SIMD=OFF builds still
// compile and pass this suite on the scalar path).
//
// Epsilons stay well below the exp() overflow edge (~709.78): past it the
// magnitude is NaN and the kernels agree on the keep *decision* but not
// necessarily on the NaN payload bits (see the LrConstants note). eps = 40 is
// included deliberately — its keep probability rounds to exactly 1.0, the
// always-keep saturation edge, where the threshold compare must still match
// `NextDouble() < 1.0`.

#include "core/pcep_encode.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/local_randomizer.h"
#include "core/pcep.h"
#include "core/sign_matrix.h"
#include "obs/metrics.h"
#include "util/cpu.h"
#include "util/random.h"

namespace pldp {
namespace {

bool Avx2Available() { return EncodeKernelAvailable(EncodeKernel::kAvx2); }

/// Restores the pre-test PLDP_ENCODE_KERNEL value (and cached selection) no
/// matter how the test exits.
class ScopedEncodeKernelEnv {
 public:
  ScopedEncodeKernelEnv() {
    const char* old = std::getenv("PLDP_ENCODE_KERNEL");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
  }
  ~ScopedEncodeKernelEnv() {
    if (had_old_) {
      setenv("PLDP_ENCODE_KERNEL", old_.c_str(), 1);
    } else {
      unsetenv("PLDP_ENCODE_KERNEL");
    }
    ResetEncodeKernelForTesting();
  }

  void Set(const char* value) {
    setenv("PLDP_ENCODE_KERNEL", value, 1);
    ResetEncodeKernelForTesting();
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

/// Same discipline for PLDP_TOPOLOGY_GROUPS, which shards the encode fan-out.
class ScopedTopologyEnv {
 public:
  ScopedTopologyEnv() {
    const char* old = std::getenv("PLDP_TOPOLOGY_GROUPS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
  }
  ~ScopedTopologyEnv() {
    if (had_old_) {
      setenv("PLDP_TOPOLOGY_GROUPS", old_.c_str(), 1);
    } else {
      unsetenv("PLDP_TOPOLOGY_GROUPS");
    }
    ResetCpuTopologyForTesting();
  }

  void Set(const char* value) {
    setenv("PLDP_TOPOLOGY_GROUPS", value, 1);
    ResetCpuTopologyForTesting();
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

struct EncodeCase {
  SignMatrix matrix;
  std::vector<PcepUser> users;
  std::vector<uint64_t> rows;
};

/// Mixed per-user epsilons interleave four constant classes (exercising the
/// multi-entry LrConstants memo), including the p = 1.0 saturation edge.
EncodeCase BuildCase(uint64_t tau_size, uint64_t m, size_t n, uint64_t seed) {
  EncodeCase c{SignMatrix(seed, m, tau_size), {}, {}};
  const double epsilons[] = {0.25, 1.0, 7.5, 40.0};
  Rng rng(seed ^ 0x5EED);
  for (size_t i = 0; i < n; ++i) {
    PcepUser user;
    user.location_index = static_cast<uint32_t>(rng.NextUint64(tau_size));
    user.epsilon = epsilons[rng.NextUint64(4)];
    c.users.push_back(user);
    c.rows.push_back(rng.NextUint64(m));
  }
  return c;
}

std::vector<double> EncodeWithKernel(ScopedEncodeKernelEnv* env,
                                     const char* kernel, const EncodeCase& c,
                                     uint64_t m, const SeedSchedule& schedule) {
  env->Set(kernel);
  std::vector<double> out(c.users.size(), 0.0);
  const Status status =
      EncodeUserRange(c.matrix, m, schedule, c.users.data(), c.rows.data(), 0,
                      c.users.size(), nullptr, out.data());
  EXPECT_TRUE(status.ok()) << kernel << ": " << status.message();
  return out;
}

class PcepEncodeParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PcepEncodeParityTest, KernelsBitIdenticalAcrossUserCounts) {
  const uint64_t tau_size = GetParam();
  const uint64_t m = 499;
  const SeedSchedule schedule{SplitMix64(0xC0FFEE ^ tau_size),
                              PcepSeeds::kClientSeedStride};
  ScopedEncodeKernelEnv env;
  // 1 and 3: pure scalar-tail; 4/8: exact vector groups; 5/9/13: group +
  // straggler mixes; 1000: many batches of both interleave groups; 1031:
  // crosses the 1024-user scratch batch with a ragged second batch.
  for (const size_t n : {size_t{1}, size_t{3}, size_t{4}, size_t{5}, size_t{8},
                         size_t{9}, size_t{13}, size_t{1000}, size_t{1031}}) {
    const EncodeCase c = BuildCase(tau_size, m, n, 0xBEEF + tau_size + n);
    const std::vector<double> scalar =
        EncodeWithKernel(&env, "scalar", c, m, schedule);
    if (!Avx2Available()) continue;
    const std::vector<double> avx2 =
        EncodeWithKernel(&env, "avx2", c, m, schedule);
    // The determinism contract: exact ==, not tolerance.
    EXPECT_EQ(avx2, scalar) << "avx2 encode diverged at n = " << n;
  }
}

// 1: degenerate region; 63/64/65: location-word tails around the SignAt
// 64-bit packing boundary; 1000: multi-word; 16384: the benchmark width.
INSTANTIATE_TEST_SUITE_P(TauSizes, PcepEncodeParityTest,
                         ::testing::Values(1, 63, 64, 65, 1000, 16384));

TEST(PcepEncodeKernelTest, ScalarKernelMatchesHandRolledSequentialLoop) {
  // The scalar kernel claims to BE the sequential reference path; pin that
  // against an independently written SignAt + Rng::Seed + LocalRandomize
  // loop so the claim is enforced from outside the library.
  const uint64_t m = 257;
  const EncodeCase c = BuildCase(1000, m, 777, 0xFACE);
  const SeedSchedule schedule{SplitMix64(0xD1CE), 0x9E3779B97F4A7C15ULL};

  std::vector<double> expected(c.users.size(), 0.0);
  Rng rng(0);
  for (size_t i = 0; i < c.users.size(); ++i) {
    const bool sign = c.matrix.SignAt(c.rows[i], c.users[i].location_index);
    rng.Seed(SplitMix64(schedule.base ^ ((i + 1) * schedule.stride)));
    expected[i] =
        LocalRandomize(sign, m, c.users[i].epsilon, &rng).value();
  }

  ScopedEncodeKernelEnv env;
  EXPECT_EQ(EncodeWithKernel(&env, "scalar", c, m, schedule), expected);
  if (Avx2Available()) {
    EXPECT_EQ(EncodeWithKernel(&env, "avx2", c, m, schedule), expected);
  }
}

TEST(PcepEncodeKernelTest, NamesAndAvailability) {
  EXPECT_STREQ(EncodeKernelName(EncodeKernel::kScalar), "scalar");
  EXPECT_STREQ(EncodeKernelName(EncodeKernel::kAvx2), "avx2");
  EXPECT_TRUE(EncodeKernelAvailable(EncodeKernel::kScalar));
#ifndef __x86_64__
  EXPECT_FALSE(EncodeKernelAvailable(EncodeKernel::kAvx2));
#endif
}

TEST(PcepEncodeKernelTest, EnvOverrideRoundTrip) {
  ScopedEncodeKernelEnv env;
  const EncodeKernel best =
      Avx2Available() ? EncodeKernel::kAvx2 : EncodeKernel::kScalar;

  env.Set("scalar");
  EXPECT_EQ(ActiveEncodeKernel(), EncodeKernel::kScalar);

  // A forced avx2 falls back to scalar gracefully when unavailable.
  env.Set("avx2");
  EXPECT_EQ(ActiveEncodeKernel(), best);

  env.Set("auto");
  EXPECT_EQ(ActiveEncodeKernel(), best);

  env.Set("AVX2");  // tokens are case-insensitive
  EXPECT_EQ(ActiveEncodeKernel(), best);

  // The encode family tops out at AVX2: a forced avx512 warns and falls back
  // to the best available kernel instead of failing.
  env.Set("avx512");
  EXPECT_EQ(ActiveEncodeKernel(), best);

  env.Set("bogus");  // unknown tokens warn and mean auto
  EXPECT_EQ(ActiveEncodeKernel(), best);
}

std::vector<PcepUser> CollectionCohort(size_t n, uint64_t tau_size) {
  std::vector<PcepUser> users;
  Rng rng(17);
  const double epsilons[] = {0.25, 1.0, 7.5, 40.0};
  for (size_t i = 0; i < n; ++i) {
    PcepUser user;
    user.location_index = static_cast<uint32_t>(rng.NextUint64(tau_size));
    user.epsilon = epsilons[rng.NextUint64(4)];
    users.push_back(user);
  }
  return users;
}

TEST(PcepEncodeKernelTest, CollectionBitIdenticalAcrossKernelsAndShards) {
  // The full RunPcepCollection transcript — accumulator vector, touch order,
  // report count — must be exactly equal across kernels AND across topology
  // shard counts. 6000 users crosses the parallel-encode threshold so the
  // sharded fan-out actually runs.
  const uint64_t tau_size = 777;
  const std::vector<PcepUser> users = CollectionCohort(6000, tau_size);
  PcepParams params;
  params.seed = 0xFACADE;

  ScopedEncodeKernelEnv env;
  ScopedTopologyEnv topology;
  topology.Set("1");
  env.Set("scalar");
  const PcepServer reference =
      RunPcepCollection(users, tau_size, params).value();

  const char* kernels[] = {"scalar", "avx2"};
  for (const char* kernel : kernels) {
    if (std::string(kernel) == "avx2" && !Avx2Available()) continue;
    for (const char* groups : {"1", "2", "5"}) {
      env.Set(kernel);
      topology.Set(groups);
      const PcepServer got =
          RunPcepCollection(users, tau_size, params).value();
      EXPECT_EQ(got.accumulator(), reference.accumulator())
          << kernel << " with " << groups << " topology groups";
      EXPECT_EQ(got.touched_rows(), reference.touched_rows())
          << kernel << " with " << groups << " topology groups";
      EXPECT_EQ(got.num_reports(), reference.num_reports());
    }
  }
}

TEST(PcepEncodeKernelTest, InvalidEpsilonAbortsWorkersEarly) {
  // An invalid-epsilon user mid-cohort must fail the collection with the
  // legacy message AND raise the shared abort flag so sibling chunks stop at
  // their next batch boundary: strictly fewer than n randomizer reports are
  // drawn, on every kernel and every shard count.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* reports = registry.GetCounter("local_randomizer.reports");
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);

  const uint64_t tau_size = 777;
  std::vector<PcepUser> users = CollectionCohort(6000, tau_size);
  users[100].epsilon = -1.0;  // mid-cohort, inside the first chunk's batch
  PcepParams params;
  params.seed = 0xFACADE;

  ScopedEncodeKernelEnv env;
  ScopedTopologyEnv topology;
  const char* kernels[] = {"scalar", "avx2"};
  for (const char* kernel : kernels) {
    if (std::string(kernel) == "avx2" && !Avx2Available()) continue;
    for (const char* groups : {"1", "4"}) {
      env.Set(kernel);
      topology.Set(groups);
      const uint64_t before = reports->Value();
      const auto result = RunPcepCollection(users, tau_size, params);
      ASSERT_FALSE(result.ok()) << kernel << "/" << groups;
      EXPECT_EQ(result.status().message(),
                "local randomizer requires epsilon > 0");
      EXPECT_LT(reports->Value() - before, users.size())
          << kernel << " with " << groups
          << " topology groups did not abort early";
    }
  }
  registry.set_enabled(was_enabled);
}

TEST(PcepEncodeKernelTest, BatchKeepDecisionsMatchesDeviceRngReference) {
  // The loadgen device schedule: stride 1, seed(i) = SplitMix64(base ^ (i+1)).
  // Reference decisions come from the real per-device Rng + Bernoulli.
  const SeedSchedule schedule{0x1234ABCD5678EF00ULL, 1};
  const uint64_t index_base = 4096;  // a mid-run chunk, not user 0
  const double epsilons_cycle[] = {0.25, 1.0, 7.5, 40.0};
  const size_t n = 1003;  // ragged 4-lane tail

  std::vector<double> epsilons(n);
  std::vector<uint8_t> expected(n);
  Rng rng(0);
  for (size_t i = 0; i < n; ++i) {
    epsilons[i] = epsilons_cycle[i % 4];
    rng.Seed(SplitMix64(schedule.base ^ (index_base + i + 1)));
    expected[i] = rng.Bernoulli(LrKeepProbability(epsilons[i])) ? 1 : 0;
  }

  ScopedEncodeKernelEnv env;
  const char* kernels[] = {"scalar", "avx2"};
  for (const char* kernel : kernels) {
    if (std::string(kernel) == "avx2" && !Avx2Available()) continue;
    env.Set(kernel);
    std::vector<uint8_t> keep(n, 0xCC);
    ASSERT_TRUE(BatchKeepDecisions(schedule, index_base, epsilons.data(), n,
                                   keep.data())
                    .ok());
    EXPECT_EQ(keep, expected) << kernel;
  }
}

TEST(PcepEncodeKernelTest, BatchKeepDecisionsRejectsInvalidEpsilon) {
  const SeedSchedule schedule{7, 1};
  double epsilons[] = {1.0, 0.0, 1.0};
  uint8_t keep[3];
  ScopedEncodeKernelEnv env;
  for (const char* kernel : {"scalar", "avx2"}) {
    if (std::string(kernel) == "avx2" && !Avx2Available()) continue;
    env.Set(kernel);
    const Status status = BatchKeepDecisions(schedule, 0, epsilons, 3, keep);
    ASSERT_FALSE(status.ok()) << kernel;
    EXPECT_EQ(status.message(), "local randomizer requires epsilon > 0");
  }
}

TEST(PcepEncodeKernelTest, ComputeLrConstantsEdges) {
  // Validation mirrors LocalRandomize exactly.
  for (const double bad : {0.0, -1.0, std::nan(""),
                           std::numeric_limits<double>::infinity()}) {
    const auto result = ComputeLrConstants(64, bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(),
              "local randomizer requires epsilon > 0");
  }
  ASSERT_FALSE(ComputeLrConstants(0, 1.0).ok());

  // eps = 1: the threshold is the exact integer form of the keep
  // probability, and the magnitude matches the sequential randomizer.
  const LrConstants c1 = ComputeLrConstants(64, 1.0).value();
  const double p = LrKeepProbability(1.0);
  EXPECT_EQ(c1.keep_threshold,
            static_cast<uint64_t>(std::ceil(p * 9007199254740992.0)));
  EXPECT_GT(c1.magnitude, 0.0);

  // eps = 40: p rounds to exactly 1.0; every 53-bit draw is below 2^53, so
  // the threshold compare keeps always — matching `NextDouble() < 1.0`.
  const LrConstants c40 = ComputeLrConstants(64, 40.0).value();
  EXPECT_EQ(c40.keep_threshold, uint64_t{1} << 53);

  // Overflowed exp(): the sequential `NextDouble() < NaN` is always false,
  // so the threshold is zero (never keep) and the magnitude is NaN.
  const LrConstants chuge = ComputeLrConstants(64, 1e6).value();
  EXPECT_EQ(chuge.keep_threshold, 0u);
  EXPECT_TRUE(std::isnan(chuge.magnitude));
}

TEST(PcepEncodeKernelTest, CounterTotalsMatchAcrossKernels) {
  if (!Avx2Available()) GTEST_SKIP() << "avx2 kernel unavailable";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* reports = registry.GetCounter("local_randomizer.reports");
  obs::Counter* flips = registry.GetCounter("local_randomizer.sign_flips");
  obs::Counter* encoded = registry.GetCounter("pcep.encoded_users");
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);

  const uint64_t m = 499;
  const EncodeCase c = BuildCase(1000, m, 2050, 0xC0DE);
  const SeedSchedule schedule{SplitMix64(0xFEED),
                              PcepSeeds::kClientSeedStride};
  ScopedEncodeKernelEnv env;

  uint64_t deltas[2][3];
  const char* kernels[] = {"scalar", "avx2"};
  for (int k = 0; k < 2; ++k) {
    const uint64_t before[3] = {reports->Value(), flips->Value(),
                                encoded->Value()};
    EncodeWithKernel(&env, kernels[k], c, m, schedule);
    deltas[k][0] = reports->Value() - before[0];
    deltas[k][1] = flips->Value() - before[1];
    deltas[k][2] = encoded->Value() - before[2];
  }
  // Same totals either way: one report and one encoded user per user, and —
  // because the keep decisions are bit-identical — the same flip count.
  EXPECT_EQ(deltas[0][0], c.users.size());
  EXPECT_EQ(deltas[1][0], deltas[0][0]);
  EXPECT_EQ(deltas[1][1], deltas[0][1]);
  EXPECT_EQ(deltas[0][2], c.users.size());
  EXPECT_EQ(deltas[1][2], deltas[0][2]);
  registry.set_enabled(was_enabled);
}

}  // namespace
}  // namespace pldp
