#include "core/fwht.h"

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/cpu.h"
#include "util/random.h"

namespace pldp {
namespace {

bool Avx2Available() { return FwhtKernelAvailable(FwhtKernel::kAvx2); }

/// Random but reproducible accumulator-like input (mixed signs, varied
/// magnitudes, exact dyadic values would hide rounding bugs, so use plain
/// uniform doubles).
std::vector<double> RandomInput(size_t n, uint64_t seed) {
  std::vector<double> data(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) data[i] = rng.NextDouble() * 8.0 - 4.0;
  return data;
}

/// O(n^2) Walsh-Hadamard multiply in natural (Sylvester) order: the ground
/// truth the butterfly kernels must match exactly (every FWHT output is a
/// +-sum of the inputs; the naive sum below adds in index order, which the
/// butterfly does NOT, so compare with a tolerance here - the exact-==
/// contract is *between kernels*, not against this reference).
std::vector<double> NaiveHadamard(const std::vector<double>& x) {
  const size_t n = x.size();
  std::vector<double> y(n, 0.0);
  for (size_t v = 0; v < n; ++v) {
    for (size_t j = 0; j < n; ++j) {
      const int parity = __builtin_popcountll(v & j) & 1;
      y[v] += parity ? -x[j] : x[j];
    }
  }
  return y;
}

TEST(FwhtTest, SizeOneIsIdentity) {
  std::vector<double> data = {42.5};
  Fwht(data.data(), 1);
  EXPECT_EQ(data[0], 42.5);
  FwhtWithKernel(FwhtKernel::kScalar, data.data(), 1);
  EXPECT_EQ(data[0], 42.5);
}

TEST(FwhtTest, SizeTwoButterfly) {
  std::vector<double> data = {3.0, 1.25};
  Fwht(data.data(), 2);
  EXPECT_EQ(data[0], 4.25);
  EXPECT_EQ(data[1], 1.75);
}

TEST(FwhtTest, PadToPowerOfTwoRaggedDomains) {
  EXPECT_EQ(PadToPowerOfTwo(0), 1u);
  EXPECT_EQ(PadToPowerOfTwo(1), 1u);
  EXPECT_EQ(PadToPowerOfTwo(2), 2u);
  EXPECT_EQ(PadToPowerOfTwo(3), 4u);
  EXPECT_EQ(PadToPowerOfTwo(63), 64u);
  EXPECT_EQ(PadToPowerOfTwo(64), 64u);
  EXPECT_EQ(PadToPowerOfTwo(65), 128u);
  EXPECT_EQ(PadToPowerOfTwo(1000), 1024u);
  EXPECT_EQ(PadToPowerOfTwo(16384), 16384u);
  EXPECT_EQ(PadToPowerOfTwo(uint64_t{1} << 40), uint64_t{1} << 40);
  EXPECT_EQ(PadToPowerOfTwo((uint64_t{1} << 40) + 1), uint64_t{1} << 41);
}

TEST(FwhtTest, MatchesNaiveHadamardMultiply) {
  for (size_t n : {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{32},
                   size_t{64}, size_t{256}}) {
    const std::vector<double> input = RandomInput(n, 0x5EED + n);
    const std::vector<double> expected = NaiveHadamard(input);
    std::vector<double> data = input;
    Fwht(data.data(), n);
    for (size_t v = 0; v < n; ++v) {
      // Different summation order than the naive reference: tolerance, not
      // exact ==. Magnitudes here are O(n * 4).
      EXPECT_NEAR(data[v], expected[v], 1e-9 * static_cast<double>(n) + 1e-12)
          << "n=" << n << " v=" << v;
    }
  }
}

TEST(FwhtTest, InvolutionUpToN) {
  // H * H = n * I: transforming twice recovers the input scaled by n.
  const size_t n = 512;
  const std::vector<double> input = RandomInput(n, 99);
  std::vector<double> data = input;
  Fwht(data.data(), n);
  Fwht(data.data(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i], input[i] * static_cast<double>(n), 1e-8);
  }
}

TEST(FwhtTest, KernelsBitIdenticalOverTauSizes) {
  if (!Avx2Available()) GTEST_SKIP() << "avx2 kernel unavailable";
  // The padded transform sizes of the issue's tau set {1, 63, 64, 65, 1000,
  // 16384}, plus every power of two through the tiled-path sizes so the
  // radix-32 / radix-8 / radix-4 / single-stage tails and the phase-B panel
  // schedule are all hit.
  for (uint64_t tau : {uint64_t{1}, uint64_t{63}, uint64_t{64}, uint64_t{65},
                       uint64_t{1000}, uint64_t{16384}}) {
    const size_t n = PadToPowerOfTwo(tau);
    const std::vector<double> input = RandomInput(n, tau);
    std::vector<double> scalar = input;
    std::vector<double> avx2 = input;
    FwhtWithKernel(FwhtKernel::kScalar, scalar.data(), n);
    FwhtWithKernel(FwhtKernel::kAvx2, avx2.data(), n);
    EXPECT_EQ(scalar, avx2) << "tau=" << tau << " n=" << n;
  }
  // Through 2^20 so phase B sees 32/64/128/256 rows: every radix-16 +
  // radix-8/4/2 remainder combination of the cross-tile row schedule.
  for (size_t n = 1; n <= (size_t{1} << 20); n <<= 1) {
    const std::vector<double> input = RandomInput(n, n * 31);
    std::vector<double> scalar = input;
    std::vector<double> avx2 = input;
    FwhtWithKernel(FwhtKernel::kScalar, scalar.data(), n);
    FwhtWithKernel(FwhtKernel::kAvx2, avx2.data(), n);
    ASSERT_EQ(scalar, avx2) << "n=" << n;
  }
}

TEST(FwhtTest, KernelNamesAndAvailability) {
  EXPECT_STREQ(FwhtKernelName(FwhtKernel::kScalar), "scalar");
  EXPECT_STREQ(FwhtKernelName(FwhtKernel::kAvx2), "avx2");
  EXPECT_TRUE(FwhtKernelAvailable(FwhtKernel::kScalar));
#ifndef __x86_64__
  EXPECT_FALSE(FwhtKernelAvailable(FwhtKernel::kAvx2));
#endif
}

/// Restores the pre-test PLDP_FWHT_KERNEL value (and cached selection) no
/// matter how the test exits.
class ScopedFwhtKernelEnv {
 public:
  ScopedFwhtKernelEnv() {
    const char* old = std::getenv("PLDP_FWHT_KERNEL");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
  }
  ~ScopedFwhtKernelEnv() {
    if (had_old_) {
      setenv("PLDP_FWHT_KERNEL", old_.c_str(), 1);
    } else {
      unsetenv("PLDP_FWHT_KERNEL");
    }
    ResetFwhtKernelForTesting();
  }

  void Set(const char* value) {
    setenv("PLDP_FWHT_KERNEL", value, 1);
    ResetFwhtKernelForTesting();
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(FwhtTest, EnvOverrideRoundTrip) {
  ScopedFwhtKernelEnv env;
  const FwhtKernel best =
      Avx2Available() ? FwhtKernel::kAvx2 : FwhtKernel::kScalar;

  env.Set("scalar");
  EXPECT_EQ(ActiveFwhtKernel(), FwhtKernel::kScalar);

  // A forced avx2 runs avx2 where available and falls back to scalar
  // gracefully where not (non-AVX2 hosts skip nothing: the selection still
  // succeeds).
  env.Set("avx2");
  EXPECT_EQ(ActiveFwhtKernel(), best);

  // The FWHT family has no avx512 kernel: the request warns and falls back.
  env.Set("avx512");
  EXPECT_EQ(ActiveFwhtKernel(), best);

  env.Set("auto");
  EXPECT_EQ(ActiveFwhtKernel(), best);

  env.Set("SCALAR");  // tokens are case-insensitive
  EXPECT_EQ(ActiveFwhtKernel(), FwhtKernel::kScalar);

  env.Set("bogus");  // unknown tokens warn and mean auto
  EXPECT_EQ(ActiveFwhtKernel(), best);
}

TEST(FwhtTest, DispatchedTransformMatchesForcedKernels) {
  ScopedFwhtKernelEnv env;
  const size_t n = 2048;
  const std::vector<double> input = RandomInput(n, 7);

  env.Set("scalar");
  std::vector<double> through_scalar = input;
  Fwht(through_scalar.data(), n);
  std::vector<double> forced = input;
  FwhtWithKernel(FwhtKernel::kScalar, forced.data(), n);
  EXPECT_EQ(through_scalar, forced);

  if (Avx2Available()) {
    env.Set("avx2");
    std::vector<double> through_avx2 = input;
    Fwht(through_avx2.data(), n);
    EXPECT_EQ(through_avx2, through_scalar);  // bit-identical contract
  }
}

TEST(FwhtTest, KernelGaugeExports) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  ScopedFwhtKernelEnv env;
  env.Set("scalar");
  ExportFwhtKernelGauge();
  EXPECT_EQ(registry.GetGauge("fwht.kernel")->Value(), 0.0);
  if (Avx2Available()) {
    env.Set("avx2");
    ExportFwhtKernelGauge();
    EXPECT_EQ(registry.GetGauge("fwht.kernel")->Value(), 1.0);
  }
  registry.set_enabled(was_enabled);
}

TEST(FwhtDeathTest, RejectsNonPowerOfTwo) {
  std::vector<double> data(3, 1.0);
  EXPECT_DEATH(Fwht(data.data(), 3), "power of two");
  EXPECT_DEATH(Fwht(data.data(), 0), "power of two");
}

}  // namespace
}  // namespace pldp
