// Wire format v1 (docs/service.md): frame encode/decode round-trips, typed
// body codecs, and the FrameDecoder's incremental-feed and poisoning
// discipline. The bit-exactness of the estimates body is load-bearing — the
// loadgen's bit-identity check compares doubles shipped through it.

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"
#include "protocol/messages.h"
#include "util/bit_vector.h"

namespace pldp {
namespace net {
namespace {

std::vector<uint8_t> WithMagic(const std::vector<uint8_t>& frames) {
  std::vector<uint8_t> stream(reinterpret_cast<const uint8_t*>(kNetMagic),
                              reinterpret_cast<const uint8_t*>(kNetMagic) +
                                  kNetMagicLen);
  stream.insert(stream.end(), frames.begin(), frames.end());
  return stream;
}

TEST(NetWireTest, FrameRoundTripsThroughDecoder) {
  const std::vector<uint8_t> body = {0x01, 0x02, 0xFF, 0x00, 0x7F};
  const std::vector<uint8_t> encoded = EncodeFrame(FrameType::kReport, body);
  ASSERT_EQ(encoded.size(), kFrameHeaderLen + 1 + body.size());

  FrameDecoder decoder(/*expect_magic=*/false);
  decoder.Feed(encoded);
  const auto frame = decoder.Next();
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, FrameType::kReport);
  EXPECT_EQ(frame->body, body);
  EXPECT_EQ(decoder.buffered(), 0u);

  // No more frames: NotFound is "need more bytes", not an error.
  const auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(decoder.poisoned());
}

TEST(NetWireTest, DecoderConsumesMagicThenFrames) {
  std::vector<uint8_t> frames = EncodeFrame(FrameType::kSealEpoch, {});
  const std::vector<uint8_t> more = EncodeFrame(FrameType::kFetchEstimates, {});
  frames.insert(frames.end(), more.begin(), more.end());

  FrameDecoder decoder(/*expect_magic=*/true);
  decoder.Feed(WithMagic(frames));
  const auto first = decoder.Next();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->type, FrameType::kSealEpoch);
  const auto second = decoder.Next();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->type, FrameType::kFetchEstimates);
}

TEST(NetWireTest, DecoderHandlesByteAtATimeFeed) {
  const std::vector<uint8_t> body(300, 0xAB);
  const std::vector<uint8_t> stream =
      WithMagic(EncodeFrame(FrameType::kRowAssignment, body));

  FrameDecoder decoder(/*expect_magic=*/true);
  size_t frames_seen = 0;
  for (const uint8_t byte : stream) {
    decoder.Feed(&byte, 1);
    const auto frame = decoder.Next();
    if (frame.ok()) {
      ++frames_seen;
      EXPECT_EQ(frame->body, body);
    } else {
      ASSERT_EQ(frame.status().code(), StatusCode::kNotFound)
          << frame.status();
    }
  }
  EXPECT_EQ(frames_seen, 1u);
}

TEST(NetWireTest, BadMagicPoisons) {
  std::vector<uint8_t> stream = WithMagic(EncodeFrame(FrameType::kReport, {}));
  stream[3] ^= 0x01;
  FrameDecoder decoder(/*expect_magic=*/true);
  decoder.Feed(stream);
  const auto frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(NetWireTest, CrcMismatchPoisonsStickily) {
  std::vector<uint8_t> encoded = EncodeFrame(FrameType::kReport, {0x01});
  encoded.back() ^= 0x10;  // flip a payload bit; CRC no longer verifies

  FrameDecoder decoder(/*expect_magic=*/false);
  decoder.Feed(encoded);
  const auto bad = decoder.Next();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(decoder.poisoned());

  // Sticky: even a fresh valid frame cannot resynchronize the stream.
  decoder.Feed(EncodeFrame(FrameType::kReport, {0x01}));
  const auto still_bad = decoder.Next();
  ASSERT_FALSE(still_bad.ok());
  EXPECT_EQ(still_bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, OversizedLengthPoisonsBeforeBuffering) {
  // A length field above max_payload must poison immediately — the decoder
  // must never try to buffer attacker-chosen gigabytes.
  FrameDecoder decoder(/*expect_magic=*/false, /*max_payload=*/64);
  const uint32_t huge = 1024;
  std::vector<uint8_t> header(8, 0);
  memcpy(header.data(), &huge, 4);
  decoder.Feed(header);
  const auto frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(NetWireTest, UnknownFrameTypePoisons) {
  FrameDecoder decoder(/*expect_magic=*/false);
  decoder.Feed(EncodeFrame(static_cast<FrameType>(200), {0x00}));
  const auto frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, EmptyPayloadFrameIsRejected) {
  // A frame needs at least the type byte; a zero-length payload cannot name
  // a frame type and must poison rather than decode.
  const uint32_t zero_len = 0;
  std::vector<uint8_t> raw(8, 0);
  memcpy(raw.data(), &zero_len, 4);
  FrameDecoder decoder(/*expect_magic=*/false);
  decoder.Feed(raw);
  EXPECT_FALSE(decoder.Next().ok());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(NetWireTest, SpecUploadBodyRoundTrips) {
  SpecUploadMsg msg;
  msg.safe_region = 17;
  msg.epsilon = 0.75;
  const auto body = EncodeSpecUploadBody(0xDEADBEEFCAFEull, msg);
  const auto parsed = ParseSpecUploadBody(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->user_id, 0xDEADBEEFCAFEull);
  EXPECT_EQ(parsed->msg.safe_region, 17u);
  EXPECT_DOUBLE_EQ(parsed->msg.epsilon, 0.75);

  // Trailing garbage after the embedded message is a protocol violation.
  auto trailing = body;
  trailing.push_back(0x00);
  EXPECT_FALSE(ParseSpecUploadBody(trailing).ok());
}

TEST(NetWireTest, SealSpecsBodiesRoundTrip) {
  const auto body = EncodeSealSpecsBody(1000000);
  const auto parsed = ParseSealSpecsBody(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value(), 1000000u);

  const auto ack = EncodeSealSpecsAckBody(37, 999983);
  const auto parsed_ack = ParseSealSpecsAckBody(ack);
  ASSERT_TRUE(parsed_ack.ok()) << parsed_ack.status();
  EXPECT_EQ(parsed_ack->num_clusters, 37u);
  EXPECT_EQ(parsed_ack->spec_responders, 999983u);
  EXPECT_FALSE(ParseSealSpecsAckBody({}).ok());
}

TEST(NetWireTest, RowRequestAndReportBodiesRoundTrip) {
  const auto req = EncodeRowRequestBody(42);
  const auto parsed_req = ParseRowRequestBody(req);
  ASSERT_TRUE(parsed_req.ok());
  EXPECT_EQ(parsed_req.value(), 42u);

  ReportMsg report;
  report.positive = true;
  const auto body = EncodeReportBody(7, report);
  const auto parsed = ParseReportBody(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->user_id, 7u);
  EXPECT_TRUE(parsed->msg.positive);
  EXPECT_FALSE(ParseReportBody({}).ok());
}

TEST(NetWireTest, SealEpochAckRoundTrips) {
  const auto body = EncodeSealEpochAckBody(4096);
  const auto parsed = ParseSealEpochAckBody(body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), 4096u);
}

TEST(NetWireTest, EstimatesBodyIsBitExact) {
  // Estimates travel as raw IEEE-754 bits: denormals, negative zero, and
  // values with no short decimal form must survive unchanged.
  const std::vector<double> counts = {0.0, -0.0, 1.0 / 3.0,
                                      5e-324,  // smallest denormal
                                      -123456.789012345,
                                      1.7976931348623157e308};
  const auto body = EncodeEstimatesBody(counts);
  const auto parsed = ParseEstimatesBody(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), counts.size());
  EXPECT_EQ(0, memcmp(parsed->data(), counts.data(),
                      counts.size() * sizeof(double)));

  // Truncated payload: count promises more doubles than are present.
  auto truncated = body;
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(ParseEstimatesBody(truncated).ok());
}

TEST(NetWireTest, ErrorBodyCarriesStatus) {
  const Status status = Status::FailedPrecondition("epoch already sealed");
  const auto body = EncodeErrorBody(status);
  const auto parsed = ParseErrorBody(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->code, StatusCode::kFailedPrecondition);
  EXPECT_EQ(parsed->message, "epoch already sealed");
  const Status round = parsed->ToStatus();
  EXPECT_EQ(round.code(), StatusCode::kFailedPrecondition);
}

TEST(NetWireTest, StatsBodyRoundTrips) {
  StatsBody stats;
  stats.phase = 1;
  stats.draining = 1;
  stats.uptime_ms = 123456789;
  stats.cohort_size = 1000000;
  stats.spec_responders = 999983;
  stats.num_clusters = 37;
  stats.published_cells = 4096;
  stats.specs_accepted = 999983;
  stats.specs_duplicate = 17;
  stats.specs_invalid = 3;
  stats.reports_staged = 500000;
  stats.reports_folded = 499000;
  stats.reports_duplicate = 42;
  stats.reports_shed = 1000;
  stats.late_frames = 5;
  stats.unknown_user_frames = 2;
  stats.wrong_phase_frames = 1;
  stats.restored_reports = 250000;
  stats.checkpoints_written = 12;
  stats.connections_accepted = 64;
  stats.connections_closed = 8;
  stats.frames_received = 2000000;
  stats.frames_sent = 2000001;
  stats.bytes_received = 0xFFFFFFFFFFull;
  stats.bytes_sent = 0x123456789Aull;
  stats.frame_errors = 7;

  const auto body = EncodeStatsBody(stats);
  const auto parsed = ParseStatsBody(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->phase, stats.phase);
  EXPECT_EQ(parsed->draining, stats.draining);
  EXPECT_EQ(parsed->uptime_ms, stats.uptime_ms);
  EXPECT_EQ(parsed->cohort_size, stats.cohort_size);
  EXPECT_EQ(parsed->spec_responders, stats.spec_responders);
  EXPECT_EQ(parsed->num_clusters, stats.num_clusters);
  EXPECT_EQ(parsed->published_cells, stats.published_cells);
  EXPECT_EQ(parsed->specs_accepted, stats.specs_accepted);
  EXPECT_EQ(parsed->specs_duplicate, stats.specs_duplicate);
  EXPECT_EQ(parsed->specs_invalid, stats.specs_invalid);
  EXPECT_EQ(parsed->reports_staged, stats.reports_staged);
  EXPECT_EQ(parsed->reports_folded, stats.reports_folded);
  EXPECT_EQ(parsed->reports_duplicate, stats.reports_duplicate);
  EXPECT_EQ(parsed->reports_shed, stats.reports_shed);
  EXPECT_EQ(parsed->late_frames, stats.late_frames);
  EXPECT_EQ(parsed->unknown_user_frames, stats.unknown_user_frames);
  EXPECT_EQ(parsed->wrong_phase_frames, stats.wrong_phase_frames);
  EXPECT_EQ(parsed->restored_reports, stats.restored_reports);
  EXPECT_EQ(parsed->checkpoints_written, stats.checkpoints_written);
  EXPECT_EQ(parsed->connections_accepted, stats.connections_accepted);
  EXPECT_EQ(parsed->connections_closed, stats.connections_closed);
  EXPECT_EQ(parsed->frames_received, stats.frames_received);
  EXPECT_EQ(parsed->frames_sent, stats.frames_sent);
  EXPECT_EQ(parsed->bytes_received, stats.bytes_received);
  EXPECT_EQ(parsed->bytes_sent, stats.bytes_sent);
  EXPECT_EQ(parsed->frame_errors, stats.frame_errors);
}

TEST(NetWireTest, StatsBodyRejectsMalformedInput) {
  StatsBody stats;
  const auto body = EncodeStatsBody(stats);

  // Trailing garbage after the last counter is a protocol violation.
  auto trailing = body;
  trailing.push_back(0x00);
  EXPECT_FALSE(ParseStatsBody(trailing).ok());

  // Truncated: counters missing off the end.
  auto truncated = body;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(ParseStatsBody(truncated).ok());

  // Out-of-range phase (only 0..2 exist) and draining (a boolean).
  auto bad_phase = body;
  bad_phase[0] = 3;
  EXPECT_FALSE(ParseStatsBody(bad_phase).ok());
  auto bad_draining = body;
  bad_draining[1] = 2;
  EXPECT_FALSE(ParseStatsBody(bad_draining).ok());

  EXPECT_FALSE(ParseStatsBody({}).ok());
}

TEST(NetWireTest, ReportOutcomeParseValidatesRange) {
  for (uint8_t b = 0; b <= 5; ++b) {
    const auto outcome = ParseReportOutcome(b);
    ASSERT_TRUE(outcome.ok()) << static_cast<int>(b);
    EXPECT_EQ(static_cast<uint8_t>(outcome.value()), b);
    EXPECT_NE(ReportOutcomeName(outcome.value()), nullptr);
  }
  EXPECT_FALSE(ParseReportOutcome(6).ok());
  EXPECT_FALSE(ParseReportOutcome(255).ok());
}

}  // namespace
}  // namespace net
}  // namespace pldp
