#include "util/status.h"

#include <sstream>

#include <gtest/gtest.h>

#include "util/status_or.h"

namespace pldp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, DeadlineExceededRoundTrips) {
  const Status s = Status::DeadlineExceeded("reply not received in time");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.message(), "reply not received in time");
  EXPECT_EQ(s.ToString(), "DeadlineExceeded: reply not received in time");
  EXPECT_EQ(std::string(StatusCodeToString(StatusCode::kDeadlineExceeded)),
            "DeadlineExceeded");
  EXPECT_EQ(s, Status(StatusCode::kDeadlineExceeded,
                      "reply not received in time"));
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "DeadlineExceeded: reply not received in time");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamOperatorPrintsToString) {
  std::ostringstream os;
  os << Status::IoError("disk gone");
  EXPECT_EQ(os.str(), "IoError: disk gone");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  PLDP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

StatusOr<int> MaybeDouble(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return 2 * x;
}

StatusOr<int> UsesAssignOrReturn(int x) {
  PLDP_ASSIGN_OR_RETURN(const int doubled, MaybeDouble(x));
  return doubled + 1;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  const StatusOr<int> ok = UsesAssignOrReturn(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  const StatusOr<int> err = UsesAssignOrReturn(-3);
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result = Status::Internal("boom");
  EXPECT_DEATH((void)result.value(), "Internal: boom");
}

}  // namespace
}  // namespace pldp
