// Cross-dataset property sweep of the full PSDA pipeline: for every
// benchmark dataset analog and spec setting combination, the framework's
// structural invariants must hold regardless of the data realization.

#include <numeric>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/psda.h"
#include "data/spec_assignment.h"
#include "data/synthetic.h"
#include "eval/experiment.h"

namespace pldp {
namespace {

using PsdaParam = std::tuple<std::string, int>;

class PsdaDatasetPropertyTest : public ::testing::TestWithParam<PsdaParam> {};

TEST_P(PsdaDatasetPropertyTest, PipelineInvariants) {
  const auto [dataset_name, setting_index] = GetParam();
  const auto setup = PrepareExperiment(dataset_name, 0.005, 77).value();
  const SafeRegionDistribution safe_regions =
      setting_index / 2 == 0 ? SafeRegionsS1() : SafeRegionsS2();
  const EpsilonDistribution epsilons =
      setting_index % 2 == 0 ? EpsilonsE1() : EpsilonsE2();
  const auto users =
      AssignSpecs(setup.taxonomy, setup.cells, safe_regions, epsilons, 13)
          .value();

  PsdaOptions options;
  options.seed = 4096 + setting_index;
  const PsdaResult result = RunPsda(setup.taxonomy, users, options).value();

  // 1. Exactly one estimate per cell.
  ASSERT_EQ(result.counts.size(), setup.taxonomy.grid().num_cells());

  // 2. Consistency pins the total to the cohort size.
  const double total =
      std::accumulate(result.counts.begin(), result.counts.end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(users.size()),
              1e-6 * users.size() + 1e-6);

  // 3. No negative estimates survive the public lower bounds.
  for (const double count : result.counts) {
    EXPECT_GE(count, -1e-9);
  }

  // 4. The clustering never worsens its own objective.
  EXPECT_LE(result.clustering.final_max_path_error,
            result.clustering.initial_max_path_error * (1 + 1e-9));

  // 5. Every cluster's top region must cover all its groups (checked by the
  //    clustering tests in depth; here we just sanity-check the count).
  EXPECT_GE(result.clustering.clusters.size(), 1u);

  // 6. Deterministic re-run.
  const PsdaResult again = RunPsda(setup.taxonomy, users, options).value();
  EXPECT_EQ(result.counts, again.counts);
}

std::string PsdaParamName(const ::testing::TestParamInfo<PsdaParam>& info) {
  static const char* const kSettings[] = {"S1E1", "S1E2", "S2E1", "S2E2"};
  return std::get<0>(info.param) + "_" + kSettings[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasetsAllSettings, PsdaDatasetPropertyTest,
    ::testing::Combine(::testing::Values("road", "checkin", "landmark",
                                         "storage"),
                       ::testing::Range(0, 4)),
    PsdaParamName);

}  // namespace
}  // namespace pldp
