#include "eval/range_summary.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/range_query.h"
#include "util/random.h"

namespace pldp {
namespace {

UniformGrid MakeGrid(double w = 10, double h = 7) {
  return UniformGrid::Create(BoundingBox{0, 0, w, h}, 1.0, 1.0).value();
}

std::vector<double> RandomCounts(const UniformGrid& grid, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> counts(grid.num_cells());
  for (double& c : counts) c = rng.NextDouble() * 100.0 - 10.0;
  return counts;
}

TEST(RangeSummaryTest, RejectsSizeMismatch) {
  const UniformGrid grid = MakeGrid();
  EXPECT_FALSE(RangeSummary::Build(grid, {1.0, 2.0}).ok());
}

TEST(RangeSummaryTest, WholeDomainEqualsTotal) {
  const UniformGrid grid = MakeGrid();
  const auto counts = RandomCounts(grid, 3);
  double total = 0.0;
  for (const double c : counts) total += c;
  const RangeSummary summary = RangeSummary::Build(grid, counts).value();
  EXPECT_NEAR(summary.Answer(grid.domain()), total, 1e-9 * (1 + std::fabs(total)));
}

TEST(RangeSummaryTest, SingleCellAndSubCellQueries) {
  const UniformGrid grid = MakeGrid();
  const auto counts = RandomCounts(grid, 5);
  const RangeSummary summary = RangeSummary::Build(grid, counts).value();
  // Exactly cell (2, 3).
  EXPECT_NEAR(summary.Answer(BoundingBox{3, 2, 4, 3}),
              counts[grid.IdOf(2, 3)], 1e-9);
  // A quarter of that cell.
  EXPECT_NEAR(summary.Answer(BoundingBox{3, 2, 3.5, 2.5}),
              0.25 * counts[grid.IdOf(2, 3)], 1e-9);
}

TEST(RangeSummaryTest, MatchesAnswerFromCellsOnRandomQueries) {
  const UniformGrid grid = MakeGrid(13, 9);
  const auto counts = RandomCounts(grid, 7);
  const RangeSummary summary = RangeSummary::Build(grid, counts).value();
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    BoundingBox query;
    query.min_lon = rng.NextDouble() * 14.0 - 0.5;
    query.min_lat = rng.NextDouble() * 10.0 - 0.5;
    query.max_lon = query.min_lon + rng.NextDouble() * 6.0;
    query.max_lat = query.min_lat + rng.NextDouble() * 5.0;
    const double expected = AnswerFromCells(grid, counts, query);
    EXPECT_NEAR(summary.Answer(query), expected,
                1e-9 * (1.0 + std::fabs(expected)))
        << query.ToString();
  }
}

TEST(RangeSummaryTest, QueriesOutsideDomainAreZero) {
  const UniformGrid grid = MakeGrid();
  const auto counts = RandomCounts(grid, 9);
  const RangeSummary summary = RangeSummary::Build(grid, counts).value();
  EXPECT_DOUBLE_EQ(summary.Answer(BoundingBox{20, 20, 25, 25}), 0.0);
  EXPECT_DOUBLE_EQ(summary.Answer(BoundingBox{-5, -5, -1, -1}), 0.0);
  EXPECT_DOUBLE_EQ(summary.Answer(BoundingBox{2, 2, 1, 1}), 0.0);  // invalid
}

TEST(RangeSummaryTest, NonUnitCellSizes) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{-10, 5, 10, 17}, 2.0, 3.0).value();
  const auto counts = RandomCounts(grid, 13);
  const RangeSummary summary = RangeSummary::Build(grid, counts).value();
  Rng rng(15);
  for (int i = 0; i < 200; ++i) {
    BoundingBox query;
    query.min_lon = -12 + rng.NextDouble() * 20;
    query.min_lat = 3 + rng.NextDouble() * 12;
    query.max_lon = query.min_lon + rng.NextDouble() * 8;
    query.max_lat = query.min_lat + rng.NextDouble() * 6;
    const double expected = AnswerFromCells(grid, counts, query);
    EXPECT_NEAR(summary.Answer(query), expected,
                1e-9 * (1.0 + std::fabs(expected)));
  }
}

}  // namespace
}  // namespace pldp
