#include "core/psda.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "geo/taxonomy.h"
#include "util/random.h"

namespace pldp {
namespace {

SpatialTaxonomy MakeTaxonomy(uint32_t side = 8) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, static_cast<double>(side),
                                      static_cast<double>(side)},
                          1, 1)
          .value();
  return SpatialTaxonomy::Build(grid, 4).value();
}

/// Builds a skewed cohort: users concentrated in a few cells, with safe
/// regions at mixed taxonomy levels and mixed epsilons.
std::vector<UserRecord> MakeCohort(const SpatialTaxonomy& tax, size_t n,
                                   uint64_t seed) {
  Rng rng(seed);
  const uint32_t cells = tax.grid().num_cells();
  std::vector<UserRecord> users;
  users.reserve(n);
  const double epsilons[] = {0.5, 0.75, 1.0};
  for (size_t i = 0; i < n; ++i) {
    // Zipf-ish cell choice.
    const auto cell = static_cast<CellId>(
        static_cast<uint32_t>(cells * std::pow(rng.NextDouble(), 2.5)) %
        cells);
    const uint32_t level = static_cast<uint32_t>(rng.NextUint64(4));
    UserRecord user;
    user.cell = cell;
    user.spec.safe_region =
        tax.AncestorAbove(tax.LeafNodeOfCell(cell), level);
    user.spec.epsilon = epsilons[rng.NextUint64(3)];
    users.push_back(user);
  }
  return users;
}

std::vector<double> TrueHistogram(const SpatialTaxonomy& tax,
                                  const std::vector<UserRecord>& users) {
  std::vector<double> histogram(tax.grid().num_cells(), 0.0);
  for (const UserRecord& user : users) histogram[user.cell] += 1.0;
  return histogram;
}

TEST(PsdaTest, RejectsEmptyCohort) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  EXPECT_FALSE(RunPsda(tax, {}, PsdaOptions()).ok());
}

TEST(PsdaTest, RejectsInvalidUser) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  std::vector<UserRecord> users = {{0, {tax.root(), -1.0}}};
  EXPECT_FALSE(RunPsda(tax, users, PsdaOptions()).ok());
}

TEST(PsdaTest, DeterministicForFixedSeed) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const auto users = MakeCohort(tax, 2000, 5);
  PsdaOptions options;
  options.seed = 99;
  const auto a = RunPsda(tax, users, options).value();
  const auto b = RunPsda(tax, users, options).value();
  EXPECT_EQ(a.counts, b.counts);
  options.seed = 100;
  const auto c = RunPsda(tax, users, options).value();
  EXPECT_NE(a.counts, c.counts);
}

TEST(PsdaTest, ResultsIndependentOfThreadCount) {
  // The per-cluster fan-out merges in cluster order and each cluster's
  // estimate is computed identically regardless of chunking, so num_threads
  // is a pure wall-time knob: every setting must give bit-identical results.
  const SpatialTaxonomy tax = MakeTaxonomy();
  const auto users = MakeCohort(tax, 3000, 11);
  PsdaOptions options;
  options.seed = 99;
  options.num_threads = 1;
  const auto sequential = RunPsda(tax, users, options).value();
  for (const unsigned threads : {0u, 2u, 5u}) {
    options.num_threads = threads;
    const auto parallel = RunPsda(tax, users, options).value();
    EXPECT_EQ(parallel.counts, sequential.counts) << "threads " << threads;
    EXPECT_EQ(parallel.raw_counts, sequential.raw_counts)
        << "threads " << threads;
  }
}

TEST(PsdaTest, CountsSumToCohortSize) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const auto users = MakeCohort(tax, 5000, 7);
  const auto result = RunPsda(tax, users, PsdaOptions()).value();
  const double total =
      std::accumulate(result.counts.begin(), result.counts.end(), 0.0);
  // Consistency pins the root to the exact total.
  EXPECT_NEAR(total, 5000.0, 1e-6);
}

TEST(PsdaTest, EstimatesTrackTrueDistribution) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 40000;
  const auto users = MakeCohort(tax, n, 11);
  const auto truth = TrueHistogram(tax, users);
  const auto result = RunPsda(tax, users, PsdaOptions()).value();

  double mae = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    mae = std::max(mae, std::fabs(truth[i] - result.counts[i]));
  }
  // Very coarse sanity bound: max error well under the cohort size and the
  // busiest cell's estimate within 50% of the truth.
  EXPECT_LT(mae, 0.2 * n);
  const size_t busiest =
      std::max_element(truth.begin(), truth.end()) - truth.begin();
  EXPECT_NEAR(result.counts[busiest], truth[busiest], 0.5 * truth[busiest]);
}

TEST(PsdaTest, ClusteringReducesOrKeepsObjective) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const auto users = MakeCohort(tax, 8000, 13);
  PsdaOptions options;
  const auto result = RunPsda(tax, users, options).value();
  EXPECT_LE(result.clustering.final_max_path_error,
            result.clustering.initial_max_path_error * (1 + 1e-9));
  EXPECT_GE(result.clustering.clusters.size(), 1u);
}

TEST(PsdaTest, AblationFlagsChangeBehavior) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const auto users = MakeCohort(tax, 3000, 17);

  PsdaOptions no_clustering;
  no_clustering.enable_clustering = false;
  const auto finest = RunPsda(tax, users, no_clustering).value();
  EXPECT_EQ(finest.clustering.merges, 0u);

  PsdaOptions no_consistency;
  no_consistency.enforce_consistency = false;
  const auto raw = RunPsda(tax, users, no_consistency).value();
  EXPECT_EQ(raw.counts, raw.raw_counts);
}

TEST(PsdaTest, AllUsersAtRootMatchesSingleProtocol) {
  // When every user declares the universe, PSDA degenerates to one cluster.
  const SpatialTaxonomy tax = MakeTaxonomy();
  std::vector<UserRecord> users;
  for (int i = 0; i < 2000; ++i) {
    users.push_back({static_cast<CellId>(i % 64), {tax.root(), 1.0}});
  }
  const auto result = RunPsda(tax, users, PsdaOptions()).value();
  EXPECT_EQ(result.clustering.clusters.size(), 1u);
  EXPECT_EQ(result.clustering.clusters[0].region_size, 64u);
}

TEST(PsdaTest, SingleLeafSafeRegionsAreNearExactAfterConsistency) {
  // Users who declare their exact location as safe region form groups whose
  // counts are publicly known; consistency should pin those leaves.
  const SpatialTaxonomy tax = MakeTaxonomy();
  std::vector<UserRecord> users;
  for (int i = 0; i < 500; ++i) {
    const CellId cell = static_cast<CellId>(i % 3);
    users.push_back({cell, {tax.LeafNodeOfCell(cell), 1.0}});
  }
  const auto result = RunPsda(tax, users, PsdaOptions()).value();
  // Cells 0..2 carry ~167 users each, all public: estimates within the lb.
  for (CellId cell = 0; cell < 3; ++cell) {
    EXPECT_GE(result.counts[cell], std::floor(500.0 / 3) - 1e-6);
  }
}

TEST(PsdaTest, ServerSecondsPopulated) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const auto users = MakeCohort(tax, 1000, 23);
  const auto result = RunPsda(tax, users, PsdaOptions()).value();
  EXPECT_GT(result.server_seconds, 0.0);
}

}  // namespace
}  // namespace pldp
