// Parity + determinism suite for the dispatched decode kernels: the AVX2
// kernel against the scalar kernel (bit-identical, exact ==) and against the
// entry-by-entry SignAt reference (reassociation slack), over tau sizes that
// exercise the 4-column vector groups, word tails, and block boundaries, for
// dense and sparse touched-row sets; plus the PLDP_DECODE_KERNEL override
// round-trip, the scratch-arena steady state, the decoded/skipped counter
// split, and the vectorized SignMatrix::Row fill. Every AVX2 assertion skips
// gracefully when the kernel is unavailable (non-x86 or PLDP_ENABLE_SIMD=OFF
// builds still compile and pass this suite on the scalar path).

#include "core/pcep_decode.h"

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pcep.h"
#include "core/sign_matrix.h"
#include "obs/metrics.h"
#include "util/cpu.h"
#include "util/random.h"

namespace pldp {
namespace {

bool Avx2Available() {
  return DecodeKernelAvailable(DecodeKernel::kAvx2);
}

bool Avx512Available() {
  return DecodeKernelAvailable(DecodeKernel::kAvx512);
}

/// Entry-by-entry reference decode straight off the matrix definition.
std::vector<double> NaiveDecode(const SignMatrix& matrix,
                                const std::vector<double>& z,
                                const std::vector<uint64_t>& rows,
                                uint64_t tau_size) {
  std::vector<double> counts(tau_size, 0.0);
  const double scale = matrix.scale();
  for (const uint64_t row : rows) {
    const double zj = z[row];
    if (zj == 0.0) continue;
    for (uint64_t k = 0; k < tau_size; ++k) {
      counts[k] += matrix.SignAt(row, k) ? zj * scale : -zj * scale;
    }
  }
  return counts;
}

void ExpectClose(const std::vector<double>& got,
                 const std::vector<double>& want, double rel,
                 const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t k = 0; k < want.size(); ++k) {
    EXPECT_NEAR(got[k], want[k], rel * (1.0 + std::fabs(want[k])))
        << label << " location " << k;
  }
}

struct DecodeCase {
  SignMatrix matrix;
  std::vector<double> z;
  std::vector<uint64_t> rows;
};

/// `stride` 1 gives a dense touched set (every row, some with exact-zero z);
/// larger strides leave most rows untouched (the fan-out steady state).
DecodeCase BuildCase(uint64_t tau_size, uint64_t m, uint64_t stride,
                     uint64_t seed) {
  DecodeCase c{SignMatrix(seed, m, tau_size), std::vector<double>(m, 0.0), {}};
  Rng rng(seed ^ 0x5EED);
  for (uint64_t row = 0; row < m; row += stride + rng.NextUint64(stride)) {
    c.rows.push_back(row);
    c.z[row] = row % 11 == 0 ? 0.0 : 2.0 * rng.NextDouble() - 1.0;
  }
  return c;
}

size_t RunKernel(DecodeKernel kernel, const DecodeCase& c, uint64_t tau_size,
                 std::vector<double>* counts) {
  counts->assign(tau_size, 0.0);
  return DecodeRowsBlockedWithKernel(kernel, c.matrix, c.z, c.rows.data(),
                                     c.rows.size(), tau_size, counts->data());
}

class PcepSimdParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PcepSimdParityTest, KernelsBitIdenticalAndMatchReference) {
  const uint64_t tau_size = GetParam();
  // Keep the largest widths affordable: enough rows to cover all four-row
  // group + straggler paths, not the full protocol-sized m.
  const uint64_t m = tau_size >= 16384 ? 257 : 997;
  for (const uint64_t stride : {uint64_t{1}, uint64_t{7}}) {
    const DecodeCase c = BuildCase(tau_size, m, stride, 0xBEEF + stride);
    std::vector<double> scalar;
    const size_t scalar_live =
        RunKernel(DecodeKernel::kScalar, c, tau_size, &scalar);
    ExpectClose(scalar, NaiveDecode(c.matrix, c.z, c.rows, tau_size), 1e-9,
                "scalar-vs-reference");
    if (!Avx2Available()) continue;
    std::vector<double> avx2;
    const size_t avx2_live = RunKernel(DecodeKernel::kAvx2, c, tau_size, &avx2);
    EXPECT_EQ(avx2_live, scalar_live);
    // The determinism contract: exact ==, not tolerance.
    EXPECT_EQ(avx2, scalar) << "avx2 kernel diverged at stride " << stride;
    if (!Avx512Available()) continue;
    std::vector<double> avx512;
    const size_t avx512_live =
        RunKernel(DecodeKernel::kAvx512, c, tau_size, &avx512);
    EXPECT_EQ(avx512_live, scalar_live);
    EXPECT_EQ(avx512, scalar) << "avx512 kernel diverged at stride " << stride;
  }
}

// 1: degenerate region; 63/64/65: word-tail boundaries (63 also exercises
// the ragged sub-4-column vector tail); 127/128: two-word rows with and
// without a ragged tail; 1000: multi-word inside one cache block; 16384: the
// benchmark width, spanning four 64-word column blocks.
INSTANTIATE_TEST_SUITE_P(TauSizes, PcepSimdParityTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000,
                                           16384));

TEST(PcepSimdKernelTest, NamesAndAvailability) {
  EXPECT_STREQ(DecodeKernelName(DecodeKernel::kScalar), "scalar");
  EXPECT_STREQ(DecodeKernelName(DecodeKernel::kAvx2), "avx2");
  EXPECT_STREQ(DecodeKernelName(DecodeKernel::kAvx512), "avx512");
  EXPECT_TRUE(DecodeKernelAvailable(DecodeKernel::kScalar));
#ifndef __x86_64__
  EXPECT_FALSE(DecodeKernelAvailable(DecodeKernel::kAvx2));
  EXPECT_FALSE(DecodeKernelAvailable(DecodeKernel::kAvx512));
#endif
  // AVX-512 support implies the AVX2 kernel is runnable too (the dispatch
  // fallback order relies on it).
  if (Avx512Available()) EXPECT_TRUE(Avx2Available());
}

/// Restores the pre-test PLDP_DECODE_KERNEL value (and cached selection) no
/// matter how the test exits.
class ScopedKernelEnv {
 public:
  ScopedKernelEnv() {
    const char* old = std::getenv("PLDP_DECODE_KERNEL");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
  }
  ~ScopedKernelEnv() {
    if (had_old_) {
      setenv("PLDP_DECODE_KERNEL", old_.c_str(), 1);
    } else {
      unsetenv("PLDP_DECODE_KERNEL");
    }
    ResetDecodeKernelForTesting();
  }

  void Set(const char* value) {
    setenv("PLDP_DECODE_KERNEL", value, 1);
    ResetDecodeKernelForTesting();
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(PcepSimdKernelTest, EnvOverrideRoundTrip) {
  ScopedKernelEnv env;
  const DecodeKernel best = Avx512Available() ? DecodeKernel::kAvx512
                            : Avx2Available() ? DecodeKernel::kAvx2
                                              : DecodeKernel::kScalar;

  env.Set("scalar");
  EXPECT_EQ(ActiveDecodeKernel(), DecodeKernel::kScalar);

  // A forced avx2 runs avx2 where available (even if avx512 is better) and
  // falls back to scalar gracefully where not.
  env.Set("avx2");
  EXPECT_EQ(ActiveDecodeKernel(), Avx2Available() ? DecodeKernel::kAvx2
                                                  : DecodeKernel::kScalar);

  // A forced avx512 runs it where the host supports it and falls back to the
  // best available kernel where it doesn't — never an error.
  env.Set("avx512");
  EXPECT_EQ(ActiveDecodeKernel(), best);

  env.Set("auto");
  EXPECT_EQ(ActiveDecodeKernel(), best);

  env.Set("AVX2");  // tokens are case-insensitive
  EXPECT_EQ(ActiveDecodeKernel(), Avx2Available() ? DecodeKernel::kAvx2
                                                  : DecodeKernel::kScalar);

  env.Set("bogus");  // unknown tokens warn and mean auto
  EXPECT_EQ(ActiveDecodeKernel(), best);
}

TEST(PcepSimdKernelTest, EstimateBitIdenticalAcrossKernels) {
  if (!Avx2Available()) GTEST_SKIP() << "avx2 kernel unavailable";
  std::vector<PcepUser> users;
  Rng rng(11);
  for (int i = 0; i < 6000; ++i) {
    users.push_back({static_cast<uint32_t>(rng.NextUint64(777)), 1.0});
  }
  PcepParams params;
  params.seed = 0xFACADE;
  const PcepServer server = RunPcepCollection(users, 777, params).value();

  ScopedKernelEnv env;
  env.Set("scalar");
  const std::vector<double> scalar = server.Estimate();
  const std::vector<double> scalar_par = server.EstimateParallel(4);
  env.Set("avx2");
  // The full public decode paths, not just the kernel: same counts arrays,
  // exact ==, for any thread count.
  EXPECT_EQ(server.Estimate(), scalar);
  EXPECT_EQ(server.EstimateParallel(4), scalar_par);
  if (Avx512Available()) {
    env.Set("avx512");
    EXPECT_EQ(server.Estimate(), scalar);
    EXPECT_EQ(server.EstimateParallel(4), scalar_par);
  }
}

TEST(PcepSimdKernelTest, ScratchSteadyStateDoesNotReallocate) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* grows = registry.GetCounter("pcep.decode_scratch_grows");
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);

  const DecodeCase c = BuildCase(1000, 500, 1, 0xA11C);
  std::vector<double> counts(1000, 0.0);

  // Caller-passed scratch: the first decode may grow it, repeats must not.
  DecodeScratch scratch;
  DecodeRowsBlocked(c.matrix, c.z, c.rows.data(), c.rows.size(), 1000,
                    counts.data(), &scratch);
  const uint64_t after_warmup = grows->Value();
  for (int rep = 0; rep < 5; ++rep) {
    DecodeRowsBlocked(c.matrix, c.z, c.rows.data(), c.rows.size(), 1000,
                      counts.data(), &scratch);
  }
  EXPECT_EQ(grows->Value(), after_warmup) << "caller scratch reallocated";

  // Thread-local arena (scratch == nullptr), the Estimate fan-out path.
  DecodeRowsBlocked(c.matrix, c.z, c.rows.data(), c.rows.size(), 1000,
                    counts.data());
  const uint64_t after_tls_warmup = grows->Value();
  for (int rep = 0; rep < 5; ++rep) {
    DecodeRowsBlocked(c.matrix, c.z, c.rows.data(), c.rows.size(), 1000,
                      counts.data());
  }
  EXPECT_EQ(grows->Value(), after_tls_warmup) << "thread-local arena "
                                                 "reallocated";
  registry.set_enabled(was_enabled);
}

TEST(PcepSimdKernelTest, DecodedRowsSplitsOutSkippedZeroRows) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* decoded = registry.GetCounter("pcep.decoded_rows");
  obs::Counter* skipped = registry.GetCounter("pcep.skipped_zero_rows");
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);

  PcepParams params;
  PcepServer server = PcepServer::Create(64, 1000, params).value();
  server.Accumulate(3, 1.25);
  server.Accumulate(7, 2.0);
  server.Accumulate(7, -2.0);  // cancels back to exactly zero
  server.Accumulate(9, -0.5);
  ASSERT_EQ(server.num_touched_rows(), 3u);

  const uint64_t decoded_before = decoded->Value();
  const uint64_t skipped_before = skipped->Value();
  server.Estimate();
  // Row 7 is touched but its z cancelled: it must count as skipped, not as
  // decoded (the kernel never expands it).
  EXPECT_EQ(decoded->Value(), decoded_before + 2);
  EXPECT_EQ(skipped->Value(), skipped_before + 1);
  registry.set_enabled(was_enabled);
}

TEST(PcepSimdKernelTest, RowFillMatchesRowWordAcrossWidths) {
  // SignMatrix::Row now bulk-fills through the dispatched FillSignWords;
  // words must match RowWord exactly and the tail must stay masked.
  for (const uint64_t width : {1u, 63u, 64u, 65u, 127u, 130u, 4097u}) {
    const SignMatrix matrix(0xF00D + width, 64, width);
    for (const uint64_t row : {uint64_t{0}, uint64_t{17}, uint64_t{63}}) {
      const BitVector bits = matrix.Row(row);
      ASSERT_EQ(bits.size(), width);
      const size_t full = width / 64;
      for (size_t w = 0; w < full; ++w) {
        EXPECT_EQ(bits.Word(w), matrix.RowWord(row, w))
            << "width " << width << " word " << w;
      }
      if (width % 64 != 0) {
        const uint64_t mask = (uint64_t{1} << (width % 64)) - 1;
        EXPECT_EQ(bits.Word(full), matrix.RowWord(row, full) & mask)
            << "width " << width << " tail";
      }
      for (uint64_t col = 0; col < std::min<uint64_t>(width, 130); ++col) {
        EXPECT_EQ(bits.Get(col), matrix.SignAt(row, col));
      }
    }
  }
}

TEST(PcepSimdKernelTest, FillSignWordsHonoursOffsets) {
  // Filling [word_begin, word_begin + n) must agree with filling from zero:
  // the stream is a pure counter hash, offsets just slide the window.
  const uint64_t stream = SplitMix64(0xDECAF);
  std::vector<uint64_t> from_zero(64);
  FillSignWords(stream, 0, from_zero.size(), from_zero.data());
  for (const size_t begin : {size_t{1}, size_t{3}, size_t{60}}) {
    std::vector<uint64_t> window(from_zero.size() - begin);
    FillSignWords(stream, begin, window.size(), window.data());
    for (size_t i = 0; i < window.size(); ++i) {
      EXPECT_EQ(window[i], from_zero[begin + i]) << "begin " << begin;
    }
  }
}

}  // namespace
}  // namespace pldp
