// Durable epoch checkpoints: encode/decode round trips, the fuzz suite
// (truncation sweep, bit-flip sweep, wrong version, bad magic, zero-length,
// trailing bytes — every malformation rejected with a clean Status, never a
// crash), durable file writes, and the retention/fallback behavior of
// CheckpointStore.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "protocol/checkpoint.h"
#include "util/random.h"

namespace pldp {
namespace {

// A realistic snapshot: 10 responders out of a 12-user cohort, two clusters
// with partially filled accumulators, three reports already ingested.
EpochCheckpoint MakeCheckpoint() {
  EpochCheckpoint ckpt;
  ckpt.epoch = 7;
  ckpt.psda_seed = 0xDEADBEEF;
  ckpt.beta = 0.1;
  ckpt.cohort_size = 12;
  for (uint32_t i = 0; i < 10; ++i) {
    PrivacySpec spec;
    spec.safe_region = NodeId{i % 5};
    spec.epsilon = (i % 2) ? 1.0 : 0.5;
    ckpt.specs.push_back(spec);
    ckpt.roster.push_back(i);
  }
  ckpt.dedup_words = {0b1011ULL};  // users 0, 1, 3 already folded in
  for (uint32_t c = 0; c < 2; ++c) {
    ClusterAccumulatorState cluster;
    cluster.cluster_index = c;
    cluster.region = NodeId{c + 1};
    cluster.tau_size = 16;
    cluster.n_expected = 5;
    cluster.m = 40;
    cluster.num_reports = c == 0 ? 2 : 1;
    cluster.n_responded = cluster.num_reports;
    cluster.n_shed = c;
    cluster.varsigma_responded = 0.25 * (c + 1);
    cluster.touched_rows = c == 0 ? std::vector<uint64_t>{11, 3}
                                  : std::vector<uint64_t>{39};
    cluster.touched_values = c == 0 ? std::vector<double>{1.5, -2.25}
                                    : std::vector<double>{0.75};
    ckpt.clusters.push_back(cluster);
  }
  ckpt.ingested = 3;
  return ckpt;
}

void ExpectEqualCheckpoints(const EpochCheckpoint& a, const EpochCheckpoint& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.psda_seed, b.psda_seed);
  EXPECT_DOUBLE_EQ(a.beta, b.beta);
  EXPECT_EQ(a.cohort_size, b.cohort_size);
  ASSERT_EQ(a.specs.size(), b.specs.size());
  for (size_t i = 0; i < a.specs.size(); ++i) {
    EXPECT_EQ(a.specs[i].safe_region, b.specs[i].safe_region);
    EXPECT_DOUBLE_EQ(a.specs[i].epsilon, b.specs[i].epsilon);
  }
  EXPECT_EQ(a.roster, b.roster);
  EXPECT_EQ(a.dedup_words, b.dedup_words);
  EXPECT_EQ(a.ingested, b.ingested);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].cluster_index, b.clusters[c].cluster_index);
    EXPECT_EQ(a.clusters[c].region, b.clusters[c].region);
    EXPECT_EQ(a.clusters[c].tau_size, b.clusters[c].tau_size);
    EXPECT_EQ(a.clusters[c].n_expected, b.clusters[c].n_expected);
    EXPECT_EQ(a.clusters[c].m, b.clusters[c].m);
    EXPECT_EQ(a.clusters[c].num_reports, b.clusters[c].num_reports);
    EXPECT_EQ(a.clusters[c].n_responded, b.clusters[c].n_responded);
    EXPECT_EQ(a.clusters[c].n_shed, b.clusters[c].n_shed);
    EXPECT_DOUBLE_EQ(a.clusters[c].varsigma_responded,
                     b.clusters[c].varsigma_responded);
    EXPECT_EQ(a.clusters[c].touched_rows, b.clusters[c].touched_rows);
    EXPECT_EQ(a.clusters[c].touched_values, b.clusters[c].touched_values);
  }
}

TEST(CheckpointCodecTest, EncodeDecodeRoundTrip) {
  const EpochCheckpoint original = MakeCheckpoint();
  const std::vector<uint8_t> bytes = EncodeCheckpoint(original);
  const EpochCheckpoint decoded = DecodeCheckpoint(bytes).value();
  ExpectEqualCheckpoints(original, decoded);
}

TEST(CheckpointCodecTest, EncodingIsDeterministic) {
  const EpochCheckpoint ckpt = MakeCheckpoint();
  EXPECT_EQ(EncodeCheckpoint(ckpt), EncodeCheckpoint(ckpt));
}

TEST(CheckpointFuzzTest, ZeroLengthAndTinyFilesAreRejected) {
  EXPECT_FALSE(DecodeCheckpoint(nullptr, 0).ok());
  const std::vector<uint8_t> bytes = EncodeCheckpoint(MakeCheckpoint());
  for (size_t len = 1; len < 16; ++len) {
    const auto decoded = DecodeCheckpoint(bytes.data(), len);
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes accepted";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CheckpointFuzzTest, EveryTruncationIsRejected) {
  // A torn write can stop at any byte; no prefix may ever decode.
  const std::vector<uint8_t> bytes = EncodeCheckpoint(MakeCheckpoint());
  for (size_t len = 0; len < bytes.size(); ++len) {
    const auto decoded = DecodeCheckpoint(bytes.data(), len);
    ASSERT_FALSE(decoded.ok()) << "truncation to " << len << " bytes accepted";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
        << "truncation to " << len;
  }
}

TEST(CheckpointFuzzTest, EverySingleBitFlipIsRejected) {
  // Bit rot anywhere — header, section framing, or payload — must be caught
  // by the magic check, the framing validation, or a section CRC.
  std::vector<uint8_t> bytes = EncodeCheckpoint(MakeCheckpoint());
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[byte] ^= static_cast<uint8_t>(1u << bit);
      const auto decoded = DecodeCheckpoint(bytes);
      EXPECT_FALSE(decoded.ok())
          << "flip of byte " << byte << " bit " << bit << " accepted";
      bytes[byte] ^= static_cast<uint8_t>(1u << bit);
    }
  }
  EXPECT_TRUE(DecodeCheckpoint(bytes).ok());
}

TEST(CheckpointFuzzTest, RandomMutationsNeverDecodeSuccessfullyOrCrash) {
  const std::vector<uint8_t> pristine = EncodeCheckpoint(MakeCheckpoint());
  Rng rng(0xF422);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bytes = pristine;
    const int flips = 1 + static_cast<int>(rng.NextUint64(8));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.NextUint64(bytes.size())] ^=
          static_cast<uint8_t>(1u << rng.NextUint64(8));
    }
    if (bytes == pristine) continue;
    const auto decoded = DecodeCheckpoint(bytes);  // must not crash
    if (decoded.ok()) {
      // Only a flip that cancels itself out may decode (we re-check above
      // that bytes differ, so any success here is a real CRC collision —
      // effectively impossible at this size).
      ADD_FAILURE() << "mutated checkpoint decoded in trial " << trial;
    }
  }
}

TEST(CheckpointFuzzTest, WrongVersionAndBadMagicAreRejected) {
  const std::vector<uint8_t> pristine = EncodeCheckpoint(MakeCheckpoint());
  {
    std::vector<uint8_t> bytes = pristine;
    bytes[8] = 0x7F;  // version little-endian low byte
    const auto decoded = DecodeCheckpoint(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
  }
  {
    std::vector<uint8_t> bytes = pristine;
    bytes[0] = 'X';
    const auto decoded = DecodeCheckpoint(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);
  }
}

TEST(CheckpointFuzzTest, TrailingBytesAreRejected) {
  std::vector<uint8_t> bytes = EncodeCheckpoint(MakeCheckpoint());
  bytes.push_back(0x00);
  EXPECT_FALSE(DecodeCheckpoint(bytes).ok());
}

TEST(CheckpointFuzzTest, SemanticInconsistenciesAreRejected) {
  {  // Dedup bits past the cohort size.
    EpochCheckpoint ckpt = MakeCheckpoint();
    ckpt.dedup_words[0] |= uint64_t{1} << 20;  // cohort_size is 12
    EXPECT_FALSE(DecodeCheckpoint(EncodeCheckpoint(ckpt)).ok());
  }
  {  // Roster index past the cohort.
    EpochCheckpoint ckpt = MakeCheckpoint();
    ckpt.roster[0] = 99;
    EXPECT_FALSE(DecodeCheckpoint(EncodeCheckpoint(ckpt)).ok());
  }
  {  // Cluster touching a row past m.
    EpochCheckpoint ckpt = MakeCheckpoint();
    ckpt.clusters[0].touched_rows[0] = ckpt.clusters[0].m + 3;
    EXPECT_FALSE(DecodeCheckpoint(EncodeCheckpoint(ckpt)).ok());
  }
  {  // More responders than accumulated reports.
    EpochCheckpoint ckpt = MakeCheckpoint();
    ckpt.clusters[0].n_responded = ckpt.clusters[0].num_reports + 1;
    EXPECT_FALSE(DecodeCheckpoint(EncodeCheckpoint(ckpt)).ok());
  }
  {  // Spec with a non-positive epsilon.
    EpochCheckpoint ckpt = MakeCheckpoint();
    ckpt.specs[2].epsilon = 0.0;
    EXPECT_FALSE(DecodeCheckpoint(EncodeCheckpoint(ckpt)).ok());
  }
}

TEST(CheckpointFileTest, DurableWriteLeavesNoTempFileBehind) {
  const std::string dir = ::testing::TempDir() + "/pldp_ckpt_durable";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/snapshot.pldp";
  ASSERT_TRUE(WriteCheckpointFile(path, MakeCheckpoint()).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  ExpectEqualCheckpoints(MakeCheckpoint(), ReadCheckpointFile(path).value());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFileTest, MissingFileIsNotFound) {
  const auto result =
      ReadCheckpointFile(::testing::TempDir() + "/pldp_no_such_file.pldp");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, SavePrunesPastTheRetentionLimit) {
  const std::string dir = ::testing::TempDir() + "/pldp_ckpt_store_prune";
  std::filesystem::remove_all(dir);
  CheckpointStore store(dir, /*keep=*/3);
  EpochCheckpoint ckpt = MakeCheckpoint();
  for (uint64_t i = 1; i <= 7; ++i) {
    ckpt.ingested = i;
    ASSERT_TRUE(store.Save(ckpt).ok());
  }
  const std::vector<std::string> files = store.ListFiles();
  ASSERT_EQ(files.size(), 3u);
  // The retained snapshots are the newest three, in ascending order.
  EXPECT_EQ(ReadCheckpointFile(files.front()).value().ingested, 5u);
  EXPECT_EQ(ReadCheckpointFile(files.back()).value().ingested, 7u);
  EXPECT_EQ(store.RestoreLatest().value().ingested, 7u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStoreTest, RestoreLatestFallsBackPastCorruptSnapshots) {
  const std::string dir = ::testing::TempDir() + "/pldp_ckpt_store_fallback";
  std::filesystem::remove_all(dir);
  CheckpointStore store(dir, /*keep=*/4);
  EpochCheckpoint ckpt = MakeCheckpoint();
  for (uint64_t i = 1; i <= 3; ++i) {
    ckpt.ingested = i;
    ASSERT_TRUE(store.Save(ckpt).ok());
  }
  std::vector<std::string> files = store.ListFiles();
  ASSERT_EQ(files.size(), 3u);

  // Tear the newest snapshot (simulated crash mid-write despite the durable
  // path) and bit-rot the middle one.
  {
    std::ifstream in(files[2], std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(files[2], std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  {
    std::fstream f(files[1],
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(40);
    f.write(&byte, 1);
  }

  // Recovery walks past both damaged files to the oldest good snapshot.
  EXPECT_EQ(store.RestoreLatest().value().ingested, 1u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStoreTest, EmptyDirectoryIsNotFound) {
  const std::string dir = ::testing::TempDir() + "/pldp_ckpt_store_empty";
  std::filesystem::remove_all(dir);
  CheckpointStore store(dir);
  const auto result = store.RestoreLatest();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, RestartedStoreNeverReusesSequenceNumbers) {
  const std::string dir = ::testing::TempDir() + "/pldp_ckpt_store_seq";
  std::filesystem::remove_all(dir);
  EpochCheckpoint ckpt = MakeCheckpoint();
  {
    CheckpointStore store(dir, /*keep=*/8);
    ckpt.ingested = 1;
    ASSERT_TRUE(store.Save(ckpt).ok());
    ckpt.ingested = 2;
    ASSERT_TRUE(store.Save(ckpt).ok());
  }
  {
    // A restarted server picks the sequence up past what is on disk.
    CheckpointStore store(dir, /*keep=*/8);
    ckpt.ingested = 3;
    ASSERT_TRUE(store.Save(ckpt).ok());
    EXPECT_EQ(store.ListFiles().size(), 3u);
    EXPECT_EQ(store.RestoreLatest().value().ingested, 3u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pldp
