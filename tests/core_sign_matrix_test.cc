#include "core/sign_matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pldp {
namespace {

TEST(SignMatrixTest, ScaleIsInverseSqrtM) {
  const SignMatrix matrix(1, 256, 10);
  EXPECT_DOUBLE_EQ(matrix.scale(), 1.0 / 16.0);
  EXPECT_EQ(matrix.m(), 256u);
  EXPECT_EQ(matrix.width(), 10u);
}

TEST(SignMatrixTest, Deterministic) {
  const SignMatrix a(99, 128, 70);
  const SignMatrix b(99, 128, 70);
  for (uint64_t row = 0; row < 128; row += 7) {
    EXPECT_EQ(a.Row(row), b.Row(row));
  }
}

TEST(SignMatrixTest, DifferentSeedsDiffer) {
  const SignMatrix a(1, 64, 256);
  const SignMatrix b(2, 64, 256);
  int equal_rows = 0;
  for (uint64_t row = 0; row < 64; ++row) {
    if (a.Row(row) == b.Row(row)) ++equal_rows;
  }
  EXPECT_EQ(equal_rows, 0);
}

TEST(SignMatrixTest, SignAtMatchesRow) {
  const SignMatrix matrix(7, 64, 130);
  for (uint64_t row = 0; row < 64; row += 5) {
    const BitVector bits = matrix.Row(row);
    for (uint64_t col = 0; col < 130; ++col) {
      EXPECT_EQ(matrix.SignAt(row, col), bits.Get(col))
          << "row " << row << " col " << col;
      EXPECT_DOUBLE_EQ(matrix.Entry(row, col),
                       bits.Get(col) ? matrix.scale() : -matrix.scale());
    }
  }
}

TEST(SignMatrixTest, EntriesAreBalanced) {
  const SignMatrix matrix(13, 4096, 64);
  size_t positives = 0;
  for (uint64_t row = 0; row < 4096; ++row) {
    positives += matrix.Row(row).PopCount();
  }
  const double fraction = static_cast<double>(positives) / (4096.0 * 64.0);
  EXPECT_NEAR(fraction, 0.5, 0.01);
}

TEST(SignMatrixTest, ColumnsNearlyOrthonormal) {
  // The JL property PCEP relies on: <Phi_k, Phi_k> = 1 exactly and
  // |<Phi_j, Phi_k>| = O(1/sqrt(m)) for j != k.
  const uint64_t m = 8192;
  const SignMatrix matrix(17, m, 8);
  for (uint64_t a = 0; a < 8; ++a) {
    for (uint64_t b = a; b < 8; ++b) {
      double dot = 0.0;
      for (uint64_t row = 0; row < m; ++row) {
        dot += matrix.Entry(row, a) * matrix.Entry(row, b);
      }
      if (a == b) {
        EXPECT_NEAR(dot, 1.0, 1e-9);
      } else {
        EXPECT_LT(std::fabs(dot), 5.0 / std::sqrt(static_cast<double>(m)))
            << "columns " << a << ", " << b;
      }
    }
  }
}

TEST(SignMatrixTest, RowWordsAreIndependentOfAccessOrder) {
  const SignMatrix matrix(23, 32, 256);
  const uint64_t direct = matrix.RowWord(5, 3);
  (void)matrix.RowWord(5, 0);
  (void)matrix.RowWord(9, 3);
  EXPECT_EQ(matrix.RowWord(5, 3), direct);
}

}  // namespace
}  // namespace pldp
