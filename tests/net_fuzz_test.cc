// Adversarial robustness of the net frame decoder and typed body parsers:
// truncations, single-bit flips, and random mutations of valid byte streams
// must always end in a clean verdict (frames out, NotFound, or a sticky
// InvalidArgument) — never a crash, an OOB read, or a misdecoded frame.
// Run under ASan/UBSan this is the satellite fuzz suite of docs/service.md.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"
#include "protocol/messages.h"
#include "util/random.h"

namespace pldp {
namespace net {
namespace {

std::vector<uint8_t> RandomBytes(Rng* rng, size_t max_len) {
  std::vector<uint8_t> bytes(rng->NextUint64(max_len + 1));
  for (auto& b : bytes) b = static_cast<uint8_t>((*rng)() & 0xFF);
  return bytes;
}

// A representative valid session prefix: magic + one frame of every
// client->server type.
std::vector<uint8_t> ValidStream() {
  std::vector<uint8_t> stream(reinterpret_cast<const uint8_t*>(kNetMagic),
                              reinterpret_cast<const uint8_t*>(kNetMagic) +
                                  kNetMagicLen);
  SpecUploadMsg spec;
  spec.safe_region = 3;
  spec.epsilon = 1.0;
  ReportMsg report;
  report.positive = true;
  const std::vector<std::vector<uint8_t>> frames = {
      EncodeFrame(FrameType::kSpecUpload, EncodeSpecUploadBody(11, spec)),
      EncodeFrame(FrameType::kSealSpecs, EncodeSealSpecsBody(4096)),
      EncodeFrame(FrameType::kRowRequest, EncodeRowRequestBody(11)),
      EncodeFrame(FrameType::kReport, EncodeReportBody(11, report)),
      EncodeFrame(FrameType::kSealEpoch, {}),
      EncodeFrame(FrameType::kFetchEstimates, {}),
      EncodeFrame(FrameType::kStatsRequest, {}),
      EncodeFrame(FrameType::kDrain, {}),
  };
  for (const auto& f : frames) stream.insert(stream.end(), f.begin(), f.end());
  return stream;
}

// Feeds `bytes` and drains the decoder. Returns the number of clean frames
// extracted before the stream ended (NotFound) or poisoned.
size_t Drain(FrameDecoder* decoder, const std::vector<uint8_t>& bytes) {
  decoder->Feed(bytes);
  size_t frames = 0;
  while (true) {
    const auto frame = decoder->Next();
    if (frame.ok()) {
      ++frames;
      continue;
    }
    EXPECT_TRUE(frame.status().code() == StatusCode::kNotFound ||
                frame.status().code() == StatusCode::kInvalidArgument)
        << frame.status();
    return frames;
  }
}

TEST(NetFuzzTest, EveryTruncationIsCleanAndNeverPoisons) {
  const std::vector<uint8_t> stream = ValidStream();
  size_t full_frames = 0;
  {
    FrameDecoder decoder;
    full_frames = Drain(&decoder, stream);
    EXPECT_EQ(full_frames, 8u);
    EXPECT_FALSE(decoder.poisoned());
  }
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    FrameDecoder decoder;
    const std::vector<uint8_t> prefix(stream.begin(), stream.begin() + cut);
    const size_t frames = Drain(&decoder, prefix);
    // A truncated valid stream is merely incomplete — every frame fully
    // present decodes, the tail waits for more bytes, nothing poisons.
    EXPECT_FALSE(decoder.poisoned()) << "cut at " << cut;
    EXPECT_LE(frames, full_frames);
  }
}

TEST(NetFuzzTest, EverySingleBitFlipEndsInCleanVerdict) {
  const std::vector<uint8_t> stream = ValidStream();
  for (size_t bit = 0; bit < stream.size() * 8; ++bit) {
    std::vector<uint8_t> flipped = stream;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    FrameDecoder decoder;
    const size_t frames = Drain(&decoder, flipped);
    // CRC32C detects every single-bit payload error and the magic/type/
    // length checks cover the rest, so a flip never yields a full clean
    // stream: either the decoder poisons or an inflated length leaves the
    // tail incomplete.
    if (!decoder.poisoned()) {
      EXPECT_LT(frames, 8u) << "bit " << bit;
    }
  }
}

TEST(NetFuzzTest, RandomMutationsNeverCrashTheDecoder) {
  const std::vector<uint8_t> stream = ValidStream();
  Rng rng(0xF156);
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> mutated = stream;
    const size_t flips = 1 + rng.NextUint64(8);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.NextUint64(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.NextUint64(8));
    }
    if (rng.Bernoulli(0.3) && !mutated.empty()) {
      mutated.resize(rng.NextUint64(mutated.size()));
    }
    FrameDecoder decoder;
    (void)Drain(&decoder, mutated);
  }
}

TEST(NetFuzzTest, DecoderSurvivesPureNoise) {
  Rng rng(0xF157);
  for (int i = 0; i < 5000; ++i) {
    FrameDecoder decoder(/*expect_magic=*/rng.Bernoulli(0.5));
    (void)Drain(&decoder, RandomBytes(&rng, 256));
  }
}

TEST(NetFuzzTest, DecoderSurvivesAdversarialChunking) {
  // The same mutated stream fed in pathological chunk sizes (1..7 bytes)
  // must behave identically to a single feed: chunking is transport detail.
  const std::vector<uint8_t> stream = ValidStream();
  Rng rng(0xF158);
  for (int i = 0; i < 2000; ++i) {
    std::vector<uint8_t> mutated = stream;
    mutated[rng.NextUint64(mutated.size())] ^=
        static_cast<uint8_t>(1u << rng.NextUint64(8));

    FrameDecoder whole;
    const size_t frames_whole = Drain(&whole, mutated);

    FrameDecoder chunked;
    size_t frames_chunked = 0;
    size_t pos = 0;
    while (pos < mutated.size()) {
      const size_t len =
          std::min<size_t>(1 + rng.NextUint64(7), mutated.size() - pos);
      const std::vector<uint8_t> chunk(mutated.begin() + pos,
                                       mutated.begin() + pos + len);
      frames_chunked += Drain(&chunked, chunk);
      pos += len;
      if (chunked.poisoned()) break;
    }
    EXPECT_EQ(frames_whole, frames_chunked) << "iteration " << i;
    EXPECT_EQ(whole.poisoned(), chunked.poisoned()) << "iteration " << i;
  }
}

TEST(NetFuzzTest, TypedBodyParsersSurviveRandomBytes) {
  Rng rng(0xF159);
  for (int i = 0; i < 20000; ++i) {
    const std::vector<uint8_t> bytes = RandomBytes(&rng, 96);
    (void)ParseSpecUploadBody(bytes);
    (void)ParseSealSpecsBody(bytes);
    (void)ParseSealSpecsAckBody(bytes);
    (void)ParseRowRequestBody(bytes);
    (void)ParseReportBody(bytes);
    (void)ParseSealEpochAckBody(bytes);
    (void)ParseEstimatesBody(bytes);
    (void)ParseErrorBody(bytes);
    (void)ParseStatsBody(bytes);
  }
}

TEST(NetFuzzTest, MutatedValidBodiesParseCleanly) {
  SpecUploadMsg spec;
  spec.safe_region = 5;
  spec.epsilon = 0.5;
  const std::vector<uint8_t> valid = EncodeSpecUploadBody(123, spec);
  Rng rng(0xF15A);
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> mutated = valid;
    mutated[rng.NextUint64(mutated.size())] ^=
        static_cast<uint8_t>(1u << rng.NextUint64(8));
    if (rng.Bernoulli(0.25) && !mutated.empty()) {
      mutated.resize(rng.NextUint64(mutated.size()));
    }
    const auto parsed = ParseSpecUploadBody(mutated);
    if (parsed.ok()) {
      // A surviving mutation still yields a structurally sane spec; the
      // engine's RegisterSpec validation is the next line of defense.
      EXPECT_GE(parsed->msg.epsilon, -1e308);
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace pldp
