#include "protocol/messages.h"

#include <gtest/gtest.h>

#include "protocol/serialization.h"
#include "util/random.h"

namespace pldp {
namespace {

TEST(SerializationTest, VarintRoundTrip) {
  Writer writer;
  const uint64_t values[] = {0,    1,    127,        128,
                             300,  1u << 20, uint64_t{1} << 40,
                             ~uint64_t{0}};
  for (const uint64_t v : values) writer.PutVarint64(v);
  Reader reader(writer.bytes());
  for (const uint64_t v : values) {
    EXPECT_EQ(reader.GetVarint64().value(), v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializationTest, VarintTruncatedFails) {
  Writer writer;
  writer.PutVarint64(300);
  std::vector<uint8_t> bytes = writer.bytes();
  bytes.pop_back();
  Reader reader(bytes.data(), bytes.size());
  EXPECT_FALSE(reader.GetVarint64().ok());
}

TEST(SerializationTest, DoubleRoundTrip) {
  Writer writer;
  const double values[] = {0.0, 1.0, -124.8, 1e-300, 1e300};
  for (const double v : values) writer.PutDouble(v);
  Reader reader(writer.bytes());
  for (const double v : values) {
    EXPECT_DOUBLE_EQ(reader.GetDouble().value(), v);
  }
}

TEST(SpecUploadMsgTest, RoundTrip) {
  SpecUploadMsg msg;
  msg.safe_region = 42;
  msg.epsilon = 0.75;
  const auto bytes = msg.Serialize();
  const SpecUploadMsg parsed = SpecUploadMsg::Parse(bytes).value();
  EXPECT_EQ(parsed.safe_region, 42u);
  EXPECT_DOUBLE_EQ(parsed.epsilon, 0.75);
}

TEST(SpecUploadMsgTest, RejectsTrailingBytes) {
  SpecUploadMsg msg;
  msg.safe_region = 1;
  msg.epsilon = 1.0;
  auto bytes = msg.Serialize();
  bytes.push_back(0x00);
  EXPECT_FALSE(SpecUploadMsg::Parse(bytes).ok());
}

TEST(RowAssignmentMsgTest, RoundTrip) {
  Rng rng(5);
  RowAssignmentMsg msg;
  msg.region = 7;
  msg.m = 100000;
  msg.row_index = 31337;
  msg.row_bits = BitVector(100);
  for (size_t i = 0; i < 100; ++i) msg.row_bits.Set(i, rng.Bernoulli(0.5));

  const auto bytes = msg.Serialize();
  const RowAssignmentMsg parsed = RowAssignmentMsg::Parse(bytes).value();
  EXPECT_EQ(parsed.region, 7u);
  EXPECT_EQ(parsed.m, 100000u);
  EXPECT_EQ(parsed.row_index, 31337u);
  EXPECT_EQ(parsed.row_bits, msg.row_bits);
}

TEST(RowAssignmentMsgTest, DownlinkSizeIsLinearInRegion) {
  // The paper's communication analysis: O(|tau|) bits per user downlink.
  RowAssignmentMsg small_msg, large_msg;
  small_msg.row_bits = BitVector(64);
  large_msg.row_bits = BitVector(64 * 16);
  const size_t small_size = small_msg.Serialize().size();
  const size_t large_size = large_msg.Serialize().size();
  EXPECT_GE(large_size - small_size, 15u * 8u);
}

TEST(RowAssignmentMsgTest, RejectsTruncation) {
  RowAssignmentMsg msg;
  msg.region = 3;
  msg.m = 64;
  msg.row_index = 5;
  msg.row_bits = BitVector(128);
  auto bytes = msg.Serialize();
  bytes.resize(bytes.size() - 4);
  EXPECT_FALSE(RowAssignmentMsg::Parse(bytes).ok());
}

TEST(ReportMsgTest, RoundTripAndSize) {
  for (const bool positive : {true, false}) {
    ReportMsg msg;
    msg.positive = positive;
    const auto bytes = msg.Serialize();
    // O(1) uplink: exactly one byte.
    EXPECT_EQ(bytes.size(), 1u);
    EXPECT_EQ(ReportMsg::Parse(bytes).value().positive, positive);
  }
}

TEST(ReportMsgTest, RejectsMalformed) {
  EXPECT_FALSE(ReportMsg::Parse({}).ok());
  EXPECT_FALSE(ReportMsg::Parse({2}).ok());
  EXPECT_FALSE(ReportMsg::Parse({1, 0}).ok());
}

}  // namespace
}  // namespace pldp
