#include "obs/manifest.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/psda.h"
#include "geo/taxonomy.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"

namespace pldp {
namespace {

SpatialTaxonomy MakeTaxonomy(uint32_t side = 8) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, static_cast<double>(side),
                                      static_cast<double>(side)},
                          1, 1)
          .value();
  return SpatialTaxonomy::Build(grid, 4).value();
}

std::vector<UserRecord> MakeCohort(const SpatialTaxonomy& tax, size_t n,
                                   uint64_t seed) {
  Rng rng(seed);
  const uint32_t cells = tax.grid().num_cells();
  std::vector<UserRecord> users;
  users.reserve(n);
  const double epsilons[] = {0.5, 0.75, 1.0};
  for (size_t i = 0; i < n; ++i) {
    const auto cell = static_cast<CellId>(
        static_cast<uint32_t>(cells * std::pow(rng.NextDouble(), 2.5)) %
        cells);
    const uint32_t level = static_cast<uint32_t>(rng.NextUint64(4));
    UserRecord user;
    user.cell = cell;
    user.spec.safe_region =
        tax.AncestorAbove(tax.LeafNodeOfCell(cell), level);
    user.spec.epsilon = epsilons[rng.NextUint64(3)];
    users.push_back(user);
  }
  return users;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

class ReportTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::DisableCollection(); }
};

TEST_F(ReportTest, JsonWriterEscapesAndNests) {
  std::ostringstream out;
  obs::JsonWriter writer(&out);
  writer.BeginObject();
  writer.Field("plain", "a\"b\\c\n");
  writer.Key("list");
  writer.BeginArray();
  writer.Number(1.5);
  writer.Number(uint64_t{7});
  writer.Bool(true);
  writer.Null();
  writer.EndArray();
  writer.Field("nan", std::nan(""));
  writer.EndObject();
  EXPECT_EQ(out.str(),
            "{\"plain\":\"a\\\"b\\\\c\\n\",\"list\":[1.5,7,true,null],"
            "\"nan\":null}");
}

TEST_F(ReportTest, AggregateSpansRollsUpByPath) {
  obs::EnableCollection();
  for (int i = 0; i < 3; ++i) {
    PLDP_SPAN("outer");
    PLDP_SPAN("inner");
  }
  { PLDP_SPAN("inner"); }  // same name at the root: a distinct path
  const auto aggregates =
      obs::AggregateSpans(obs::TraceCollector::Global().Snapshot());
  ASSERT_EQ(aggregates.size(), 3u);
  EXPECT_EQ(aggregates[0].path, "inner");
  EXPECT_EQ(aggregates[0].count, 1u);
  EXPECT_EQ(aggregates[1].path, "outer");
  EXPECT_EQ(aggregates[1].count, 3u);
  EXPECT_EQ(aggregates[2].path, "outer/inner");
  EXPECT_EQ(aggregates[2].count, 3u);
  EXPECT_GE(aggregates[2].total_ms, 0.0);
}

TEST_F(ReportTest, RunReportJsonCarriesManifestMetricsAndSpans) {
  obs::EnableCollection();
  obs::MetricsRegistry::Global().GetCounter("report_test.counter")
      ->Increment(12);
  { PLDP_SPAN("report_test.phase"); }

  obs::RunManifest manifest;
  manifest.tool = "obs_report_test";
  manifest.command = "selftest";
  manifest.AddParam("dataset", "synthetic");
  manifest.AddParam("seed", uint64_t{2016});

  const std::string path = TempPath("run_report.json");
  ASSERT_TRUE(obs::WriteRunReportJson(path, manifest).ok());
  const std::string json = ReadFile(path);

  EXPECT_NE(json.find("\"schema\":\"pldp.run_report/1\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"obs_report_test\""), std::string::npos);
  EXPECT_NE(json.find("\"command\":\"selftest\""), std::string::npos);
  EXPECT_NE(json.find("\"dataset\":\"synthetic\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":\"2016\""), std::string::npos);
  EXPECT_NE(json.find("\"git_revision\""), std::string::npos);
  EXPECT_NE(json.find("\"report_test.counter\":12"), std::string::npos);
  EXPECT_NE(json.find("\"report_test.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"span_aggregates\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ReportTest, MetricsCsvListsEveryKind) {
  obs::EnableCollection();
  obs::MetricsRegistry::Global().GetCounter("csv_test.counter")->Increment(4);
  obs::MetricsRegistry::Global().GetGauge("csv_test.gauge")->Set(1.5);
  obs::MetricsRegistry::Global()
      .GetHistogram("csv_test.hist", {1.0})
      ->Observe(0.5);

  const std::string path = TempPath("metrics.csv");
  ASSERT_TRUE(
      obs::WriteMetricsCsv(path, obs::MetricsRegistry::Global().Snapshot())
          .ok());
  const std::string csv = ReadFile(path);
  EXPECT_NE(csv.find("kind,name,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,csv_test.counter,4"), std::string::npos);
  EXPECT_NE(csv.find("gauge,csv_test.gauge,1.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram_count,csv_test.hist,1"), std::string::npos);
  EXPECT_NE(csv.find("histogram_bucket,csv_test.hist{le=1}"),
            std::string::npos);
  std::remove(path.c_str());
}

// The acceptance bar for the instrumentation: with no exporter attached
// (collection disabled), the pipeline's estimates are byte-identical to an
// instrumented run with the same seed — spans and counters never perturb the
// computation.
TEST_F(ReportTest, CollectionDoesNotChangeEstimates) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const std::vector<UserRecord> users = MakeCohort(tax, 4000, 77);
  PsdaOptions options;
  options.seed = 1234;

  obs::DisableCollection();
  const PsdaResult plain = RunPsda(tax, users, options).value();

  obs::EnableCollection();
  const PsdaResult instrumented = RunPsda(tax, users, options).value();
  obs::DisableCollection();

  ASSERT_EQ(plain.counts.size(), instrumented.counts.size());
  for (size_t i = 0; i < plain.counts.size(); ++i) {
    EXPECT_EQ(plain.counts[i], instrumented.counts[i]) << "cell " << i;
  }
  ASSERT_EQ(plain.raw_counts.size(), instrumented.raw_counts.size());
  for (size_t i = 0; i < plain.raw_counts.size(); ++i) {
    EXPECT_EQ(plain.raw_counts[i], instrumented.raw_counts[i]);
  }
}

TEST_F(ReportTest, EnableCollectionResetsState) {
  obs::EnableCollection();
  obs::MetricsRegistry::Global().GetCounter("enable_test.counter")
      ->Increment(9);
  { PLDP_SPAN("enable_test.span"); }
  obs::EnableCollection();  // a fresh run starts clean
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetCounter("enable_test.counter")
                ->Value(),
            0u);
  EXPECT_TRUE(obs::TraceCollector::Global().Snapshot().empty());
  EXPECT_TRUE(obs::MetricsRegistry::Global().enabled());
  EXPECT_TRUE(obs::TraceCollector::Global().enabled());
}

}  // namespace
}  // namespace pldp
