#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace pldp {
namespace {

/// Runs a ParallelFor and records every (chunk, begin, end) triple it saw.
std::vector<std::tuple<unsigned, size_t, size_t>> RecordChunks(
    ThreadPool& pool, size_t begin, size_t end, unsigned num_chunks) {
  std::mutex mu;
  std::vector<std::tuple<unsigned, size_t, size_t>> chunks;
  pool.ParallelFor(begin, end, num_chunks,
                   [&](unsigned chunk, size_t chunk_begin, size_t chunk_end) {
                     std::lock_guard<std::mutex> lock(mu);
                     chunks.emplace_back(chunk, chunk_begin, chunk_end);
                   });
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

TEST(ThreadPoolTest, ChunksPartitionTheRangeExactly) {
  ThreadPool pool(4);
  for (const auto& [begin, end, num_chunks] :
       std::vector<std::tuple<size_t, size_t, unsigned>>{
           {0, 100, 4}, {7, 19, 3}, {0, 5, 8}, {0, 1, 1}, {3, 1000, 7}}) {
    const auto chunks = RecordChunks(pool, begin, end, num_chunks);
    // Non-empty chunks only, ascending, covering [begin, end) exactly.
    size_t cursor = begin;
    for (const auto& [chunk, chunk_begin, chunk_end] : chunks) {
      EXPECT_EQ(chunk_begin, cursor);
      EXPECT_LT(chunk_begin, chunk_end);
      // The documented boundary formula.
      const size_t size = end - begin;
      EXPECT_EQ(chunk_begin, begin + size * chunk / num_chunks);
      EXPECT_EQ(chunk_end, begin + size * (chunk + 1) / num_chunks);
      cursor = chunk_end;
    }
    EXPECT_EQ(cursor, end);
  }
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfPoolSize) {
  ThreadPool one(1);
  ThreadPool two(2);
  ThreadPool eight(8);
  const auto a = RecordChunks(one, 11, 977, 5);
  const auto b = RecordChunks(two, 11, 977, 5);
  const auto c = RecordChunks(eight, 11, 977, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(ThreadPoolTest, EveryElementVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kSize = 10000;
  std::vector<std::atomic<int>> visits(kSize);
  pool.ParallelFor(0, kSize, 16, [&](unsigned, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kSize; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, EmptyRangeNeverCallsBody) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, 4, [&](unsigned, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(0, 10, 4, [&](unsigned, size_t, size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithSameChunks) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::tuple<unsigned, size_t, size_t>> nested;
  pool.ParallelFor(0, 2, 2, [&](unsigned, size_t begin, size_t end) {
    EXPECT_TRUE(pool.InWorker());
    const std::thread::id outer_thread = std::this_thread::get_id();
    for (size_t c = begin; c < end; ++c) {
      pool.ParallelFor(
          10, 30, 3, [&](unsigned chunk, size_t chunk_begin, size_t chunk_end) {
            // Nested chunks stay on the issuing worker thread.
            EXPECT_EQ(std::this_thread::get_id(), outer_thread);
            std::lock_guard<std::mutex> lock(mu);
            nested.emplace_back(chunk, chunk_begin, chunk_end);
          });
    }
  });
  std::sort(nested.begin(), nested.end());
  // Two nested calls, each covering [10, 30) in 3 chunks.
  ThreadPool reference(1);
  auto expected = RecordChunks(reference, 10, 30, 3);
  auto doubled = expected;
  doubled.insert(doubled.end(), expected.begin(), expected.end());
  std::sort(doubled.begin(), doubled.end());
  EXPECT_EQ(nested, doubled);
}

TEST(ThreadPoolTest, ConcurrentIssuersShareThePool) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  std::vector<std::thread> issuers;
  issuers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    issuers.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        pool.ParallelFor(0, 64, 8, [&](unsigned, size_t begin, size_t end) {
          total.fetch_add(end - begin, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : issuers) t.join();
  EXPECT_EQ(total.load(), 4u * 50u * 64u);
}

TEST(ThreadPoolTest, ConfiguredThreadCountHonorsEnvOverride) {
  ::setenv("PLDP_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::ConfiguredThreadCount(), 3u);
  ::setenv("PLDP_THREADS", "100000", 1);
  EXPECT_EQ(ThreadPool::ConfiguredThreadCount(), 256u);
  // Unparsable / non-positive values fall back to hardware_concurrency.
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned fallback = hw == 0 ? 1 : hw;
  ::setenv("PLDP_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::ConfiguredThreadCount(), fallback);
  ::setenv("PLDP_THREADS", "garbage", 1);
  EXPECT_EQ(ThreadPool::ConfiguredThreadCount(), fallback);
  ::unsetenv("PLDP_THREADS");
  EXPECT_EQ(ThreadPool::ConfiguredThreadCount(), fallback);
}

TEST(ThreadPoolTest, GlobalIsASingleton) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(ThreadPoolTest, CompletionEstablishesHappensBefore) {
  ThreadPool pool(4);
  // Plain (non-atomic) writes must be visible to the issuer afterwards.
  std::vector<int> data(1000, 0);
  pool.ParallelFor(0, data.size(), 8, [&](unsigned, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) data[i] = static_cast<int>(i);
  });
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], static_cast<int>(i));
  }
}

}  // namespace
}  // namespace pldp
