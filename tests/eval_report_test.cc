#include "eval/report.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "util/csv.h"

namespace pldp {
namespace {

TEST(ReportTest, WriteCountsCsvRoundTrips) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, 2, 2}, 1, 1).value();
  const std::vector<double> counts = {1.5, 2.5, 3.5, 4.5};
  const std::string path = ::testing::TempDir() + "/pldp_report.csv";
  ASSERT_TRUE(WriteCountsCsv(path, grid, counts).ok());

  const std::string contents = ReadFileToString(path).value();
  EXPECT_NE(contents.find("cell,row,col,min_lon"), std::string::npos);
  // One header + one line per cell.
  EXPECT_EQ(std::count(contents.begin(), contents.end(), '\n'), 5);
  EXPECT_NE(contents.find("3,1,1,1,1,2,2,4.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportTest, WriteCountsCsvRejectsSizeMismatch) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, 2, 2}, 1, 1).value();
  EXPECT_FALSE(WriteCountsCsv("/tmp/x.csv", grid, {1.0}).ok());
}

TEST(ReportTest, WriteTableCsv) {
  const std::string path = ::testing::TempDir() + "/pldp_table.csv";
  ASSERT_TRUE(WriteTableCsv(path, {"scheme", "kl"},
                            {{"PSDA", "0.1"}, {"SR", "0.9"}})
                  .ok());
  const std::string contents = ReadFileToString(path).value();
  EXPECT_EQ(contents, "scheme,kl\nPSDA,0.1\nSR,0.9\n");
  std::remove(path.c_str());
}

TEST(ReportTest, WriteTableCsvRejectsRaggedRows) {
  EXPECT_FALSE(WriteTableCsv("/tmp/x.csv", {"a", "b"}, {{"1"}}).ok());
  EXPECT_FALSE(WriteTableCsv("/tmp/x.csv", {}, {}).ok());
}

}  // namespace
}  // namespace pldp
