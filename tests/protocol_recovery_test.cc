// Crash-safe epoch aggregation: RunEpoch/ResumeEpoch semantics — the
// bit-identical recovery contract on a clean channel, the
// restart-from-scratch path when no snapshot survives, configuration
// mismatch rejection, and graceful degradation under admission control.

#include <cmath>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/psda.h"
#include "protocol/channel.h"
#include "protocol/client.h"
#include "protocol/server.h"
#include "util/random.h"

namespace pldp {
namespace {

SpatialTaxonomy MakeTaxonomy(uint32_t side = 8) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, static_cast<double>(side),
                                      static_cast<double>(side)},
                          1, 1)
          .value();
  return SpatialTaxonomy::Build(grid, 4).value();
}

std::vector<DeviceClient> MakeClients(const SpatialTaxonomy& tax, size_t n,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<DeviceClient> clients;
  clients.reserve(n);
  const double epsilons[] = {0.5, 1.0};
  for (size_t i = 0; i < n; ++i) {
    const auto cell =
        static_cast<CellId>(rng.NextUint64(tax.grid().num_cells()));
    const uint32_t level = static_cast<uint32_t>(rng.NextUint64(3));
    PrivacySpec spec;
    spec.safe_region = tax.AncestorAbove(tax.LeafNodeOfCell(cell), level);
    spec.epsilon = epsilons[rng.NextUint64(2)];
    clients.emplace_back(&tax, cell, spec, SplitMix64(seed ^ (i + 1)));
  }
  return clients;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(RunEpochTest, DefaultOptionsMatchCollectExactly) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients_a = MakeClients(tax, 400, 31);
  auto clients_b = MakeClients(tax, 400, 31);

  AggregationServer server(&tax, PsdaOptions());
  ProtocolStats collect_stats, epoch_stats;
  const PsdaResult via_collect =
      server.Collect(&clients_a, &collect_stats).value();
  const PsdaResult via_epoch =
      server.RunEpoch(&clients_b, EpochRunOptions(), &epoch_stats).value();

  EXPECT_EQ(via_collect.counts, via_epoch.counts);
  EXPECT_EQ(via_collect.raw_counts, via_epoch.raw_counts);
  EXPECT_TRUE(collect_stats == epoch_stats);
}

TEST(RunEpochTest, CheckpointingDoesNotPerturbTheTranscript) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients_a = MakeClients(tax, 300, 77);
  auto clients_b = MakeClients(tax, 300, 77);

  AggregationServer server(&tax, PsdaOptions());
  const PsdaResult plain = server.Collect(&clients_a, nullptr).value();

  EpochRunOptions run;
  run.checkpoint.dir = FreshDir("pldp_recovery_noperturb");
  run.checkpoint.every_n_reports = 32;
  const PsdaResult checkpointed =
      server.RunEpoch(&clients_b, run, nullptr).value();

  EXPECT_EQ(plain.counts, checkpointed.counts);
  // The final snapshot is always written, so the epoch is durable.
  EXPECT_FALSE(CheckpointStore(run.checkpoint.dir).ListFiles().empty());
  std::filesystem::remove_all(run.checkpoint.dir);
}

TEST(RecoveryTest, CrashThenResumeIsBitIdenticalOnCleanChannel) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t cohort = 500;
  auto baseline_clients = MakeClients(tax, cohort, 42);
  auto chaos_clients = MakeClients(tax, cohort, 42);

  AggregationServer server(&tax, PsdaOptions());
  const PsdaResult baseline =
      server.Collect(&baseline_clients, nullptr).value();

  EpochRunOptions run;
  run.epoch = 3;
  run.checkpoint.dir = FreshDir("pldp_recovery_bitident");
  run.checkpoint.every_n_reports = 16;
  run.crash_after_ingests = 210;  // not a multiple of 16: past the snapshot

  ProtocolStats crash_stats;
  const auto crashed = server.RunEpoch(&chaos_clients, run, &crash_stats);
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kAborted);
  // Partial stats are still written so the harness can account the crash.
  EXPECT_GT(crash_stats.spec_responders, 0u);

  run.crash_after_ingests = 0;
  ProtocolStats recovered_stats;
  const PsdaResult recovered =
      server.ResumeEpoch(&chaos_clients, run, &recovered_stats).value();

  // The snapshot held the last multiple of 16 before the kill point; the
  // remaining users re-exchange from their device caches, so the decode is
  // bit-identical to the uninterrupted run.
  EXPECT_EQ(recovered_stats.restored_reports, 208u);
  EXPECT_GE(recovered_stats.recovery_ms, 0.0);
  EXPECT_EQ(recovered_stats.dropped_clients, 0u);
  EXPECT_EQ(baseline.counts, recovered.counts);
  EXPECT_EQ(baseline.raw_counts, recovered.raw_counts);
  std::filesystem::remove_all(run.checkpoint.dir);
}

TEST(RecoveryTest, ResumeAfterCompletedEpochNeverReexchanges) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients = MakeClients(tax, 250, 9);

  AggregationServer server(&tax, PsdaOptions());
  EpochRunOptions run;
  run.checkpoint.dir = FreshDir("pldp_recovery_complete");
  run.checkpoint.every_n_reports = 64;
  ProtocolStats first_stats;
  const PsdaResult first = server.RunEpoch(&clients, run, &first_stats).value();

  // The final snapshot covers the whole epoch: a resume restores everything
  // and exchanges nothing (the dedup bitset marks every responder as seen).
  ProtocolStats resume_stats;
  const PsdaResult resumed =
      server.ResumeEpoch(&clients, run, &resume_stats).value();
  EXPECT_EQ(resume_stats.restored_reports, first_stats.spec_responders);
  EXPECT_EQ(resume_stats.messages_to_clients, 0u);
  EXPECT_EQ(resume_stats.messages_to_server, 0u);
  EXPECT_EQ(first.counts, resumed.counts);
  std::filesystem::remove_all(run.checkpoint.dir);
}

TEST(RecoveryTest, CrashBeforeFirstSnapshotLeavesNothingToResume) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients = MakeClients(tax, 200, 13);

  AggregationServer server(&tax, PsdaOptions());
  EpochRunOptions run;
  run.checkpoint.dir = FreshDir("pldp_recovery_nothing");
  run.checkpoint.every_n_reports = 1000;  // cadence never fires
  run.crash_after_ingests = 5;

  const auto crashed = server.RunEpoch(&clients, run, nullptr);
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kAborted);

  run.crash_after_ingests = 0;
  const auto resumed = server.ResumeEpoch(&clients, run, nullptr);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kNotFound);

  // The harness's fallback: re-run from scratch. Devices answer from their
  // cached reports, so even this path reproduces the baseline exactly.
  auto baseline_clients = MakeClients(tax, 200, 13);
  const PsdaResult baseline =
      server.Collect(&baseline_clients, nullptr).value();
  const PsdaResult rerun = server.RunEpoch(&clients, run, nullptr).value();
  EXPECT_EQ(baseline.counts, rerun.counts);
  std::filesystem::remove_all(run.checkpoint.dir);
}

TEST(RecoveryTest, ResumeRejectsMismatchedConfigurations) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients = MakeClients(tax, 200, 23);

  AggregationServer server(&tax, PsdaOptions());
  EpochRunOptions run;
  run.epoch = 1;
  run.checkpoint.dir = FreshDir("pldp_recovery_mismatch");
  run.checkpoint.every_n_reports = 16;
  run.crash_after_ingests = 100;
  ASSERT_EQ(server.RunEpoch(&clients, run, nullptr).status().code(),
            StatusCode::kAborted);
  run.crash_after_ingests = 0;

  {  // Wrong epoch number.
    EpochRunOptions wrong = run;
    wrong.epoch = 2;
    const auto resumed = server.ResumeEpoch(&clients, wrong, nullptr);
    ASSERT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  }
  {  // Different protocol seed.
    PsdaOptions other_options;
    other_options.seed += 1;
    AggregationServer other(&tax, other_options);
    const auto resumed = other.ResumeEpoch(&clients, run, nullptr);
    ASSERT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  }
  {  // Different confidence level.
    PsdaOptions other_options;
    other_options.beta = 0.2;
    AggregationServer other(&tax, other_options);
    const auto resumed = other.ResumeEpoch(&clients, run, nullptr);
    ASSERT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  }
  {  // Different cohort size.
    auto smaller = MakeClients(tax, 150, 23);
    const auto resumed = server.ResumeEpoch(&smaller, run, nullptr);
    ASSERT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  }
  {  // No checkpoint directory at all.
    EpochRunOptions no_dir;
    const auto resumed = server.ResumeEpoch(&clients, no_dir, nullptr);
    ASSERT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
  }

  // The matching configuration still resumes fine afterwards.
  EXPECT_TRUE(server.ResumeEpoch(&clients, run, nullptr).ok());
  std::filesystem::remove_all(run.checkpoint.dir);
}

TEST(AdmissionControlTest, OverloadShedsGracefullyAndRescalesUnbiased) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t cohort = 1500;
  auto clients = MakeClients(tax, cohort, 55);

  AggregationServer server(&tax, PsdaOptions());
  EpochRunOptions run;
  run.admission.max_queue_depth = 32;
  run.admission.service_per_arrival = 0.8;  // sheds ~20% at steady state

  ProtocolStats stats;
  const PsdaResult result = server.RunEpoch(&clients, run, &stats).value();

  EXPECT_GT(stats.shed_reports, 0u);
  // A shed report never starts an exchange and never drops the client.
  EXPECT_EQ(stats.dropped_clients, 0u);
  uint64_t cluster_shed = 0, cluster_responded = 0;
  for (const ClusterResponseStats& c : stats.cluster_response) {
    cluster_shed += c.n_shed;
    cluster_responded += c.n_responded;
    EXPECT_EQ(c.n_responded + c.n_shed, c.n_expected);
  }
  EXPECT_EQ(cluster_shed, stats.shed_reports);
  EXPECT_EQ(cluster_responded + cluster_shed, cohort);

  // Rescaling by n_expected / n_responded keeps the totals unbiased: the
  // estimate still sums to roughly the cohort size.
  const double total =
      std::accumulate(result.counts.begin(), result.counts.end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(cohort), cohort * 0.1);
}

TEST(AdmissionControlTest, SheddingIsSeedDeterministic) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients_a = MakeClients(tax, 400, 71);
  auto clients_b = MakeClients(tax, 400, 71);

  AggregationServer server(&tax, PsdaOptions());
  EpochRunOptions run;
  run.admission.max_queue_depth = 16;
  run.admission.service_per_arrival = 0.5;

  ProtocolStats stats_a, stats_b;
  const PsdaResult a = server.RunEpoch(&clients_a, run, &stats_a).value();
  const PsdaResult b = server.RunEpoch(&clients_b, run, &stats_b).value();
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_TRUE(stats_a == stats_b);
}

}  // namespace
}  // namespace pldp
