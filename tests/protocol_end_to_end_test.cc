#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/error_model.h"
#include "core/pcep.h"
#include "core/psda.h"
#include "protocol/client.h"
#include "protocol/messages.h"
#include "protocol/server.h"
#include "util/random.h"

namespace pldp {
namespace {

SpatialTaxonomy MakeTaxonomy(uint32_t side = 8) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, static_cast<double>(side),
                                      static_cast<double>(side)},
                          1, 1)
          .value();
  return SpatialTaxonomy::Build(grid, 4).value();
}

std::vector<DeviceClient> MakeClients(const SpatialTaxonomy& tax, size_t n,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<DeviceClient> clients;
  clients.reserve(n);
  const double epsilons[] = {0.5, 1.0};
  for (size_t i = 0; i < n; ++i) {
    const auto cell =
        static_cast<CellId>(rng.NextUint64(tax.grid().num_cells()));
    const uint32_t level = static_cast<uint32_t>(rng.NextUint64(3));
    PrivacySpec spec;
    spec.safe_region = tax.AncestorAbove(tax.LeafNodeOfCell(cell), level);
    spec.epsilon = epsilons[rng.NextUint64(2)];
    clients.emplace_back(&tax, cell, spec, SplitMix64(seed ^ (i + 1)));
  }
  return clients;
}

TEST(ProtocolEndToEndTest, RunsAndSumsToCohort) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients = MakeClients(tax, 3000, 42);
  AggregationServer server(&tax, PsdaOptions());
  ProtocolStats stats;
  const PsdaResult result = server.Collect(&clients, &stats).value();

  EXPECT_EQ(stats.dropped_clients, 0u);
  const double total =
      std::accumulate(result.counts.begin(), result.counts.end(), 0.0);
  EXPECT_NEAR(total, 3000.0, 1e-6);
}

TEST(ProtocolEndToEndTest, CommunicationCostsMatchAnalysis) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 1000;
  auto clients = MakeClients(tax, n, 43);
  AggregationServer server(&tax, PsdaOptions());
  ProtocolStats stats;
  (void)server.Collect(&clients, &stats).value();

  // Uplink: one spec + one 1-byte report per user -> O(1) per user.
  EXPECT_EQ(stats.messages_to_server, 2 * n);
  EXPECT_LT(stats.bytes_to_server, n * 32);
  // Downlink: one row per user, each O(|tau|) bits; |tau| <= 64 cells here,
  // so the packed row is at most 8 bytes + headers.
  EXPECT_EQ(stats.messages_to_clients, n);
  EXPECT_LT(stats.bytes_to_clients, n * 64);
}

TEST(ProtocolEndToEndTest, MatchesInMemoryPsdaStatistically) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  const size_t n = 20000;
  auto clients = MakeClients(tax, n, 44);

  // Mirror the same cohort as UserRecords for the in-memory path.
  Rng rng(44);
  std::vector<UserRecord> users;
  const double epsilons[] = {0.5, 1.0};
  std::vector<double> truth(tax.grid().num_cells(), 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto cell =
        static_cast<CellId>(rng.NextUint64(tax.grid().num_cells()));
    const uint32_t level = static_cast<uint32_t>(rng.NextUint64(3));
    UserRecord user;
    user.cell = cell;
    user.spec.safe_region = tax.AncestorAbove(tax.LeafNodeOfCell(cell), level);
    user.spec.epsilon = epsilons[rng.NextUint64(2)];
    users.push_back(user);
    truth[cell] += 1.0;
  }

  AggregationServer server(&tax, PsdaOptions());
  const PsdaResult via_protocol = server.Collect(&clients, nullptr).value();
  const PsdaResult in_memory = RunPsda(tax, users, PsdaOptions()).value();

  // Identical cohort, independent randomness: both estimates should be close
  // to the truth, hence to each other, at the scale of the error bound.
  double protocol_mae = 0.0, memory_mae = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    protocol_mae =
        std::max(protocol_mae, std::fabs(via_protocol.counts[i] - truth[i]));
    memory_mae =
        std::max(memory_mae, std::fabs(in_memory.counts[i] - truth[i]));
  }
  EXPECT_LT(protocol_mae, 0.2 * n);
  EXPECT_LT(memory_mae, 0.2 * n);
}

TEST(ProtocolEndToEndTest, BitIdenticalToRunPcepWithSameSeeds) {
  // Drive one PCEP through the message layer with client seeds matching the
  // PcepSeeds schedule: the transcript must equal the in-memory fast path.
  const SpatialTaxonomy tax = MakeTaxonomy(4);
  const NodeId root = tax.root();
  const uint64_t tau_size = tax.RegionSize(root);
  const size_t n = 500;

  PcepParams params;
  params.seed = 1234;
  const PcepSeeds seeds(params.seed);

  std::vector<PcepUser> pcep_users;
  std::vector<DeviceClient> clients;
  Rng cohort_rng(7);
  for (size_t i = 0; i < n; ++i) {
    const auto cell = static_cast<CellId>(cohort_rng.NextUint64(16));
    pcep_users.push_back({static_cast<uint32_t>(cell), 1.0});
    clients.emplace_back(&tax, cell, PrivacySpec{root, 1.0},
                         seeds.ClientSeed(i));
  }
  const std::vector<double> fast = RunPcep(pcep_users, tau_size, params).value();

  PcepServer pcep = PcepServer::Create(tau_size, n, params).value();
  Rng row_rng(seeds.row_assignment);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t row = pcep.AssignRow(&row_rng);
    RowAssignmentMsg assignment;
    assignment.region = root;
    assignment.m = pcep.m();
    assignment.row_index = row;
    assignment.row_bits = pcep.sign_matrix().Row(row);
    const auto reply = clients[i].HandleRowAssignment(assignment.Serialize());
    ASSERT_TRUE(reply.ok()) << reply.status();
    const ReportMsg report = ReportMsg::Parse(reply.value()).value();
    const double magnitude =
        CEpsilon(1.0) * std::sqrt(static_cast<double>(pcep.m()));
    pcep.Accumulate(row, report.positive ? magnitude : -magnitude);
  }
  const std::vector<double> via_messages = pcep.Estimate();
  ASSERT_EQ(via_messages.size(), fast.size());
  for (size_t k = 0; k < fast.size(); ++k) {
    EXPECT_DOUBLE_EQ(via_messages[k], fast[k]) << "location " << k;
  }
}

TEST(ProtocolEndToEndTest, DeterministicForFixedSeeds) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  auto clients_a = MakeClients(tax, 800, 77);
  auto clients_b = MakeClients(tax, 800, 77);
  AggregationServer server(&tax, PsdaOptions());
  const auto a = server.Collect(&clients_a, nullptr).value();
  const auto b = server.Collect(&clients_b, nullptr).value();
  EXPECT_EQ(a.counts, b.counts);
}

TEST(ProtocolEndToEndTest, ByteCountsAreDeterministic) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  ProtocolStats stats_a, stats_b;
  auto clients_a = MakeClients(tax, 500, 78);
  auto clients_b = MakeClients(tax, 500, 78);
  AggregationServer server(&tax, PsdaOptions());
  (void)server.Collect(&clients_a, &stats_a).value();
  (void)server.Collect(&clients_b, &stats_b).value();
  EXPECT_EQ(stats_a.bytes_to_clients, stats_b.bytes_to_clients);
  EXPECT_EQ(stats_a.bytes_to_server, stats_b.bytes_to_server);
  EXPECT_EQ(stats_a.messages_to_clients, stats_b.messages_to_clients);
}

TEST(ProtocolEndToEndTest, DishonestServerRegionIsRefused) {
  // A dishonest server assigns a region that does not cover the client's
  // safe region; the device must refuse (privacy preserved, report dropped).
  const SpatialTaxonomy tax = MakeTaxonomy();
  const NodeId child0 = tax.children(tax.root())[0];
  const NodeId child1 = tax.children(tax.root())[1];
  const CellId cell = tax.RegionCells(child1)[0];
  DeviceClient client(&tax, cell, PrivacySpec{child1, 1.0}, 5);

  RowAssignmentMsg bogus;
  bogus.region = child0;  // does not contain child1
  bogus.m = 64;
  bogus.row_index = 0;
  bogus.row_bits = BitVector(tax.RegionSize(child0));
  const auto reply = client.HandleRowAssignment(bogus.Serialize());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ProtocolEndToEndTest, MalformedAssignmentIsRefused) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  DeviceClient client(&tax, 0, PrivacySpec{tax.root(), 1.0}, 6);
  EXPECT_FALSE(client.HandleRowAssignment({0x01, 0x02}).ok());

  // Row shorter than the region: refused rather than misused.
  RowAssignmentMsg short_row;
  short_row.region = tax.root();
  short_row.m = 64;
  short_row.row_index = 0;
  short_row.row_bits = BitVector(4);
  EXPECT_FALSE(client.HandleRowAssignment(short_row.Serialize()).ok());
}

TEST(ProtocolEndToEndTest, EmptyCohortRejected) {
  const SpatialTaxonomy tax = MakeTaxonomy();
  AggregationServer server(&tax, PsdaOptions());
  std::vector<DeviceClient> none;
  EXPECT_FALSE(server.Collect(&none, nullptr).ok());
}

TEST(ScheduledFleetTest, SeedForMatchesLegacyClosedForms) {
  // {base, 1} is the hand-rolled fleet loop; {client_base, kClientSeedStride}
  // is PcepSeeds::ClientSeed. One definition, two historical spellings.
  const uint64_t base = 0xFEEDFACE;
  const SeedSchedule fleet{base, 1};
  const PcepSeeds seeds(base);
  const SeedSchedule kernel{seeds.client_base, PcepSeeds::kClientSeedStride};
  for (uint64_t i : {uint64_t{0}, uint64_t{1}, uint64_t{7}, uint64_t{4096}}) {
    EXPECT_EQ(fleet.SeedFor(i), SplitMix64(base ^ (i + 1)));
    EXPECT_EQ(kernel.SeedFor(i), seeds.ClientSeed(i));
  }
}

TEST(ScheduledFleetTest, TranscriptsBitIdenticalToLegacySeeding) {
  // The regression the schedule must never break: a fleet built through
  // BuildScheduledFleet produces byte-for-byte the reports (and therefore
  // the exact end-to-end counts) of the legacy per-site seeding loop.
  const SpatialTaxonomy tax = MakeTaxonomy();
  const uint64_t seed = 2024;
  const size_t n = 500;

  Rng rng(seed);
  std::vector<UserRecord> users;
  users.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto cell =
        static_cast<CellId>(rng.NextUint64(tax.grid().num_cells()));
    PrivacySpec spec;
    spec.safe_region = tax.AncestorAbove(
        tax.LeafNodeOfCell(cell), static_cast<uint32_t>(rng.NextUint64(3)));
    spec.epsilon = rng.Bernoulli(0.5) ? 0.5 : 1.0;
    users.push_back({cell, spec});
  }

  std::vector<DeviceClient> legacy;
  legacy.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    legacy.emplace_back(&tax, users[i].cell, users[i].spec,
                        SplitMix64(seed ^ (i + 1)));
  }
  std::vector<DeviceClient> scheduled =
      BuildScheduledFleet(tax, users, SeedSchedule{seed, 1});
  ASSERT_EQ(scheduled.size(), legacy.size());

  PsdaOptions options;
  options.seed = 31337;
  ProtocolStats legacy_stats, scheduled_stats;
  AggregationServer server(&tax, options);
  const PsdaResult legacy_result =
      server.Collect(&legacy, &legacy_stats).value();
  const PsdaResult scheduled_result =
      server.Collect(&scheduled, &scheduled_stats).value();

  EXPECT_EQ(legacy_result.counts, scheduled_result.counts);  // exact ==
  EXPECT_EQ(legacy_stats.bytes_to_server, scheduled_stats.bytes_to_server);
  EXPECT_EQ(legacy_stats.messages_to_server,
            scheduled_stats.messages_to_server);
}

}  // namespace
}  // namespace pldp
