# Empty compiler generated dependencies file for core_psda_test.
# This may be replaced when dependencies are built.
