# Empty compiler generated dependencies file for core_error_model_test.
# This may be replaced when dependencies are built.
