file(REMOVE_RECURSE
  "CMakeFiles/util_bit_vector_test.dir/util_bit_vector_test.cc.o"
  "CMakeFiles/util_bit_vector_test.dir/util_bit_vector_test.cc.o.d"
  "util_bit_vector_test"
  "util_bit_vector_test.pdb"
  "util_bit_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_bit_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
