# Empty dependencies file for util_bit_vector_test.
# This may be replaced when dependencies are built.
