file(REMOVE_RECURSE
  "CMakeFiles/data_stats_test.dir/data_stats_test.cc.o"
  "CMakeFiles/data_stats_test.dir/data_stats_test.cc.o.d"
  "data_stats_test"
  "data_stats_test.pdb"
  "data_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
