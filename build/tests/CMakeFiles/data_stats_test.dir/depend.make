# Empty dependencies file for data_stats_test.
# This may be replaced when dependencies are built.
