file(REMOVE_RECURSE
  "CMakeFiles/eval_attack_test.dir/eval_attack_test.cc.o"
  "CMakeFiles/eval_attack_test.dir/eval_attack_test.cc.o.d"
  "eval_attack_test"
  "eval_attack_test.pdb"
  "eval_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
