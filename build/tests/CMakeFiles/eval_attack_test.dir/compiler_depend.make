# Empty compiler generated dependencies file for eval_attack_test.
# This may be replaced when dependencies are built.
