# Empty compiler generated dependencies file for core_pcep_test.
# This may be replaced when dependencies are built.
