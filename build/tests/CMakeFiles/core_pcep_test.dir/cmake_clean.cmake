file(REMOVE_RECURSE
  "CMakeFiles/core_pcep_test.dir/core_pcep_test.cc.o"
  "CMakeFiles/core_pcep_test.dir/core_pcep_test.cc.o.d"
  "core_pcep_test"
  "core_pcep_test.pdb"
  "core_pcep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pcep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
