file(REMOVE_RECURSE
  "CMakeFiles/core_consistency_test.dir/core_consistency_test.cc.o"
  "CMakeFiles/core_consistency_test.dir/core_consistency_test.cc.o.d"
  "core_consistency_test"
  "core_consistency_test.pdb"
  "core_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
