# Empty compiler generated dependencies file for core_consistency_test.
# This may be replaced when dependencies are built.
