file(REMOVE_RECURSE
  "CMakeFiles/baselines_uniform_grid_test.dir/baselines_uniform_grid_test.cc.o"
  "CMakeFiles/baselines_uniform_grid_test.dir/baselines_uniform_grid_test.cc.o.d"
  "baselines_uniform_grid_test"
  "baselines_uniform_grid_test.pdb"
  "baselines_uniform_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_uniform_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
