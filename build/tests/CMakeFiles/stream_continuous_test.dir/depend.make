# Empty dependencies file for stream_continuous_test.
# This may be replaced when dependencies are built.
