file(REMOVE_RECURSE
  "CMakeFiles/stream_continuous_test.dir/stream_continuous_test.cc.o"
  "CMakeFiles/stream_continuous_test.dir/stream_continuous_test.cc.o.d"
  "stream_continuous_test"
  "stream_continuous_test.pdb"
  "stream_continuous_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_continuous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
