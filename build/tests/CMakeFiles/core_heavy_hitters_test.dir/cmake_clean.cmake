file(REMOVE_RECURSE
  "CMakeFiles/core_heavy_hitters_test.dir/core_heavy_hitters_test.cc.o"
  "CMakeFiles/core_heavy_hitters_test.dir/core_heavy_hitters_test.cc.o.d"
  "core_heavy_hitters_test"
  "core_heavy_hitters_test.pdb"
  "core_heavy_hitters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_heavy_hitters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
