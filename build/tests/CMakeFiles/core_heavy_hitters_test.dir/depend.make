# Empty dependencies file for core_heavy_hitters_test.
# This may be replaced when dependencies are built.
