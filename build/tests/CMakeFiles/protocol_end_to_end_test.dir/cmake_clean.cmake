file(REMOVE_RECURSE
  "CMakeFiles/protocol_end_to_end_test.dir/protocol_end_to_end_test.cc.o"
  "CMakeFiles/protocol_end_to_end_test.dir/protocol_end_to_end_test.cc.o.d"
  "protocol_end_to_end_test"
  "protocol_end_to_end_test.pdb"
  "protocol_end_to_end_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
