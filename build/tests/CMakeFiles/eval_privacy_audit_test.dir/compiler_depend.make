# Empty compiler generated dependencies file for eval_privacy_audit_test.
# This may be replaced when dependencies are built.
