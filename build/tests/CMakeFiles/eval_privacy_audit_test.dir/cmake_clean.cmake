file(REMOVE_RECURSE
  "CMakeFiles/eval_privacy_audit_test.dir/eval_privacy_audit_test.cc.o"
  "CMakeFiles/eval_privacy_audit_test.dir/eval_privacy_audit_test.cc.o.d"
  "eval_privacy_audit_test"
  "eval_privacy_audit_test.pdb"
  "eval_privacy_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_privacy_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
