# Empty dependencies file for protocol_messages_test.
# This may be replaced when dependencies are built.
