file(REMOVE_RECURSE
  "CMakeFiles/protocol_messages_test.dir/protocol_messages_test.cc.o"
  "CMakeFiles/protocol_messages_test.dir/protocol_messages_test.cc.o.d"
  "protocol_messages_test"
  "protocol_messages_test.pdb"
  "protocol_messages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
