file(REMOVE_RECURSE
  "CMakeFiles/protocol_fuzz_test.dir/protocol_fuzz_test.cc.o"
  "CMakeFiles/protocol_fuzz_test.dir/protocol_fuzz_test.cc.o.d"
  "protocol_fuzz_test"
  "protocol_fuzz_test.pdb"
  "protocol_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
