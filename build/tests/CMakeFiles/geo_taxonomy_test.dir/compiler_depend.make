# Empty compiler generated dependencies file for geo_taxonomy_test.
# This may be replaced when dependencies are built.
