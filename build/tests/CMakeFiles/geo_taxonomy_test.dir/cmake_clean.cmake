file(REMOVE_RECURSE
  "CMakeFiles/geo_taxonomy_test.dir/geo_taxonomy_test.cc.o"
  "CMakeFiles/geo_taxonomy_test.dir/geo_taxonomy_test.cc.o.d"
  "geo_taxonomy_test"
  "geo_taxonomy_test.pdb"
  "geo_taxonomy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_taxonomy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
