# Empty dependencies file for core_sign_matrix_test.
# This may be replaced when dependencies are built.
