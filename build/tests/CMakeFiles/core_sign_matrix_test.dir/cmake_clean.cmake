file(REMOVE_RECURSE
  "CMakeFiles/core_sign_matrix_test.dir/core_sign_matrix_test.cc.o"
  "CMakeFiles/core_sign_matrix_test.dir/core_sign_matrix_test.cc.o.d"
  "core_sign_matrix_test"
  "core_sign_matrix_test.pdb"
  "core_sign_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sign_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
