# Empty compiler generated dependencies file for eval_report_test.
# This may be replaced when dependencies are built.
