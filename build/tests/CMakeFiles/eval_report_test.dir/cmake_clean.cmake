file(REMOVE_RECURSE
  "CMakeFiles/eval_report_test.dir/eval_report_test.cc.o"
  "CMakeFiles/eval_report_test.dir/eval_report_test.cc.o.d"
  "eval_report_test"
  "eval_report_test.pdb"
  "eval_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
