file(REMOVE_RECURSE
  "CMakeFiles/geo_grid_test.dir/geo_grid_test.cc.o"
  "CMakeFiles/geo_grid_test.dir/geo_grid_test.cc.o.d"
  "geo_grid_test"
  "geo_grid_test.pdb"
  "geo_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
