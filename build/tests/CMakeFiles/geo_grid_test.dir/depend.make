# Empty dependencies file for geo_grid_test.
# This may be replaced when dependencies are built.
