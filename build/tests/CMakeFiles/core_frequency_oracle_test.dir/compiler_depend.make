# Empty compiler generated dependencies file for core_frequency_oracle_test.
# This may be replaced when dependencies are built.
