file(REMOVE_RECURSE
  "CMakeFiles/core_frequency_oracle_test.dir/core_frequency_oracle_test.cc.o"
  "CMakeFiles/core_frequency_oracle_test.dir/core_frequency_oracle_test.cc.o.d"
  "core_frequency_oracle_test"
  "core_frequency_oracle_test.pdb"
  "core_frequency_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_frequency_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
