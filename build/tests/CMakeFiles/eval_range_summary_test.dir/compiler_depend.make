# Empty compiler generated dependencies file for eval_range_summary_test.
# This may be replaced when dependencies are built.
