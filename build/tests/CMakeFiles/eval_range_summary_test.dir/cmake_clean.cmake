file(REMOVE_RECURSE
  "CMakeFiles/eval_range_summary_test.dir/eval_range_summary_test.cc.o"
  "CMakeFiles/eval_range_summary_test.dir/eval_range_summary_test.cc.o.d"
  "eval_range_summary_test"
  "eval_range_summary_test.pdb"
  "eval_range_summary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_range_summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
