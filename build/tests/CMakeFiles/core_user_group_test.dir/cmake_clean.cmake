file(REMOVE_RECURSE
  "CMakeFiles/core_user_group_test.dir/core_user_group_test.cc.o"
  "CMakeFiles/core_user_group_test.dir/core_user_group_test.cc.o.d"
  "core_user_group_test"
  "core_user_group_test.pdb"
  "core_user_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_user_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
