# Empty dependencies file for core_user_group_test.
# This may be replaced when dependencies are built.
