file(REMOVE_RECURSE
  "CMakeFiles/core_clustering_reference_test.dir/core_clustering_reference_test.cc.o"
  "CMakeFiles/core_clustering_reference_test.dir/core_clustering_reference_test.cc.o.d"
  "core_clustering_reference_test"
  "core_clustering_reference_test.pdb"
  "core_clustering_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_clustering_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
