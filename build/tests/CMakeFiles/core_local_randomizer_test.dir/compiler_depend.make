# Empty compiler generated dependencies file for core_local_randomizer_test.
# This may be replaced when dependencies are built.
