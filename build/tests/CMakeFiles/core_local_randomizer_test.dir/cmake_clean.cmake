file(REMOVE_RECURSE
  "CMakeFiles/core_local_randomizer_test.dir/core_local_randomizer_test.cc.o"
  "CMakeFiles/core_local_randomizer_test.dir/core_local_randomizer_test.cc.o.d"
  "core_local_randomizer_test"
  "core_local_randomizer_test.pdb"
  "core_local_randomizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_local_randomizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
