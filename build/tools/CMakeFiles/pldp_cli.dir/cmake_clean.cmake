file(REMOVE_RECURSE
  "CMakeFiles/pldp_cli.dir/pldp_cli.cc.o"
  "CMakeFiles/pldp_cli.dir/pldp_cli.cc.o.d"
  "pldp_cli"
  "pldp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pldp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
