# Empty dependencies file for pldp_cli.
# This may be replaced when dependencies are built.
