file(REMOVE_RECURSE
  "CMakeFiles/pldp_cli_lib.dir/cli.cc.o"
  "CMakeFiles/pldp_cli_lib.dir/cli.cc.o.d"
  "libpldp_cli_lib.a"
  "libpldp_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pldp_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
