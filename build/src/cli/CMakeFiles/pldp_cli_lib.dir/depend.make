# Empty dependencies file for pldp_cli_lib.
# This may be replaced when dependencies are built.
