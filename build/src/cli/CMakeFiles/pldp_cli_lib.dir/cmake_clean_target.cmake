file(REMOVE_RECURSE
  "libpldp_cli_lib.a"
)
