file(REMOVE_RECURSE
  "CMakeFiles/pldp_baselines.dir/cloak.cc.o"
  "CMakeFiles/pldp_baselines.dir/cloak.cc.o.d"
  "CMakeFiles/pldp_baselines.dir/kdtree.cc.o"
  "CMakeFiles/pldp_baselines.dir/kdtree.cc.o.d"
  "CMakeFiles/pldp_baselines.dir/sr.cc.o"
  "CMakeFiles/pldp_baselines.dir/sr.cc.o.d"
  "CMakeFiles/pldp_baselines.dir/uniform_grid.cc.o"
  "CMakeFiles/pldp_baselines.dir/uniform_grid.cc.o.d"
  "libpldp_baselines.a"
  "libpldp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pldp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
