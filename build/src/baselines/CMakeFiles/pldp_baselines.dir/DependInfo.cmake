
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cloak.cc" "src/baselines/CMakeFiles/pldp_baselines.dir/cloak.cc.o" "gcc" "src/baselines/CMakeFiles/pldp_baselines.dir/cloak.cc.o.d"
  "/root/repo/src/baselines/kdtree.cc" "src/baselines/CMakeFiles/pldp_baselines.dir/kdtree.cc.o" "gcc" "src/baselines/CMakeFiles/pldp_baselines.dir/kdtree.cc.o.d"
  "/root/repo/src/baselines/sr.cc" "src/baselines/CMakeFiles/pldp_baselines.dir/sr.cc.o" "gcc" "src/baselines/CMakeFiles/pldp_baselines.dir/sr.cc.o.d"
  "/root/repo/src/baselines/uniform_grid.cc" "src/baselines/CMakeFiles/pldp_baselines.dir/uniform_grid.cc.o" "gcc" "src/baselines/CMakeFiles/pldp_baselines.dir/uniform_grid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pldp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pldp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pldp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
