# Empty dependencies file for pldp_baselines.
# This may be replaced when dependencies are built.
