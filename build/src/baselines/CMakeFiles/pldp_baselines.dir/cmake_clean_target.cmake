file(REMOVE_RECURSE
  "libpldp_baselines.a"
)
