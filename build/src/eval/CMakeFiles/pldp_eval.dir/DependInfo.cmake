
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/attack.cc" "src/eval/CMakeFiles/pldp_eval.dir/attack.cc.o" "gcc" "src/eval/CMakeFiles/pldp_eval.dir/attack.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/pldp_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/pldp_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/pldp_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/pldp_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/privacy_audit.cc" "src/eval/CMakeFiles/pldp_eval.dir/privacy_audit.cc.o" "gcc" "src/eval/CMakeFiles/pldp_eval.dir/privacy_audit.cc.o.d"
  "/root/repo/src/eval/range_query.cc" "src/eval/CMakeFiles/pldp_eval.dir/range_query.cc.o" "gcc" "src/eval/CMakeFiles/pldp_eval.dir/range_query.cc.o.d"
  "/root/repo/src/eval/range_summary.cc" "src/eval/CMakeFiles/pldp_eval.dir/range_summary.cc.o" "gcc" "src/eval/CMakeFiles/pldp_eval.dir/range_summary.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/eval/CMakeFiles/pldp_eval.dir/report.cc.o" "gcc" "src/eval/CMakeFiles/pldp_eval.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/pldp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pldp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pldp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pldp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pldp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
