file(REMOVE_RECURSE
  "CMakeFiles/pldp_eval.dir/attack.cc.o"
  "CMakeFiles/pldp_eval.dir/attack.cc.o.d"
  "CMakeFiles/pldp_eval.dir/experiment.cc.o"
  "CMakeFiles/pldp_eval.dir/experiment.cc.o.d"
  "CMakeFiles/pldp_eval.dir/metrics.cc.o"
  "CMakeFiles/pldp_eval.dir/metrics.cc.o.d"
  "CMakeFiles/pldp_eval.dir/privacy_audit.cc.o"
  "CMakeFiles/pldp_eval.dir/privacy_audit.cc.o.d"
  "CMakeFiles/pldp_eval.dir/range_query.cc.o"
  "CMakeFiles/pldp_eval.dir/range_query.cc.o.d"
  "CMakeFiles/pldp_eval.dir/range_summary.cc.o"
  "CMakeFiles/pldp_eval.dir/range_summary.cc.o.d"
  "CMakeFiles/pldp_eval.dir/report.cc.o"
  "CMakeFiles/pldp_eval.dir/report.cc.o.d"
  "libpldp_eval.a"
  "libpldp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pldp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
