file(REMOVE_RECURSE
  "libpldp_eval.a"
)
