# Empty compiler generated dependencies file for pldp_eval.
# This may be replaced when dependencies are built.
