file(REMOVE_RECURSE
  "CMakeFiles/pldp_stream.dir/continuous.cc.o"
  "CMakeFiles/pldp_stream.dir/continuous.cc.o.d"
  "libpldp_stream.a"
  "libpldp_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pldp_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
