file(REMOVE_RECURSE
  "libpldp_stream.a"
)
