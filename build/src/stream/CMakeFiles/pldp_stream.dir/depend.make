# Empty dependencies file for pldp_stream.
# This may be replaced when dependencies are built.
