file(REMOVE_RECURSE
  "libpldp_protocol.a"
)
