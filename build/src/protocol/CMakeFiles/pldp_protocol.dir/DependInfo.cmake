
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/client.cc" "src/protocol/CMakeFiles/pldp_protocol.dir/client.cc.o" "gcc" "src/protocol/CMakeFiles/pldp_protocol.dir/client.cc.o.d"
  "/root/repo/src/protocol/messages.cc" "src/protocol/CMakeFiles/pldp_protocol.dir/messages.cc.o" "gcc" "src/protocol/CMakeFiles/pldp_protocol.dir/messages.cc.o.d"
  "/root/repo/src/protocol/server.cc" "src/protocol/CMakeFiles/pldp_protocol.dir/server.cc.o" "gcc" "src/protocol/CMakeFiles/pldp_protocol.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pldp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pldp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pldp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
