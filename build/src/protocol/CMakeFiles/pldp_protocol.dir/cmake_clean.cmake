file(REMOVE_RECURSE
  "CMakeFiles/pldp_protocol.dir/client.cc.o"
  "CMakeFiles/pldp_protocol.dir/client.cc.o.d"
  "CMakeFiles/pldp_protocol.dir/messages.cc.o"
  "CMakeFiles/pldp_protocol.dir/messages.cc.o.d"
  "CMakeFiles/pldp_protocol.dir/server.cc.o"
  "CMakeFiles/pldp_protocol.dir/server.cc.o.d"
  "libpldp_protocol.a"
  "libpldp_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pldp_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
