# Empty dependencies file for pldp_protocol.
# This may be replaced when dependencies are built.
