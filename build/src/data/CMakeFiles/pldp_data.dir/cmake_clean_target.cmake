file(REMOVE_RECURSE
  "libpldp_data.a"
)
