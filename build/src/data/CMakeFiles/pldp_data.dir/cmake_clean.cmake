file(REMOVE_RECURSE
  "CMakeFiles/pldp_data.dir/dataset.cc.o"
  "CMakeFiles/pldp_data.dir/dataset.cc.o.d"
  "CMakeFiles/pldp_data.dir/loader.cc.o"
  "CMakeFiles/pldp_data.dir/loader.cc.o.d"
  "CMakeFiles/pldp_data.dir/spec_assignment.cc.o"
  "CMakeFiles/pldp_data.dir/spec_assignment.cc.o.d"
  "CMakeFiles/pldp_data.dir/stats.cc.o"
  "CMakeFiles/pldp_data.dir/stats.cc.o.d"
  "CMakeFiles/pldp_data.dir/synthetic.cc.o"
  "CMakeFiles/pldp_data.dir/synthetic.cc.o.d"
  "libpldp_data.a"
  "libpldp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pldp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
