# Empty dependencies file for pldp_data.
# This may be replaced when dependencies are built.
