file(REMOVE_RECURSE
  "CMakeFiles/pldp_core.dir/clustering.cc.o"
  "CMakeFiles/pldp_core.dir/clustering.cc.o.d"
  "CMakeFiles/pldp_core.dir/consistency.cc.o"
  "CMakeFiles/pldp_core.dir/consistency.cc.o.d"
  "CMakeFiles/pldp_core.dir/error_model.cc.o"
  "CMakeFiles/pldp_core.dir/error_model.cc.o.d"
  "CMakeFiles/pldp_core.dir/frequency_oracle.cc.o"
  "CMakeFiles/pldp_core.dir/frequency_oracle.cc.o.d"
  "CMakeFiles/pldp_core.dir/heavy_hitters.cc.o"
  "CMakeFiles/pldp_core.dir/heavy_hitters.cc.o.d"
  "CMakeFiles/pldp_core.dir/local_randomizer.cc.o"
  "CMakeFiles/pldp_core.dir/local_randomizer.cc.o.d"
  "CMakeFiles/pldp_core.dir/pcep.cc.o"
  "CMakeFiles/pldp_core.dir/pcep.cc.o.d"
  "CMakeFiles/pldp_core.dir/privacy_spec.cc.o"
  "CMakeFiles/pldp_core.dir/privacy_spec.cc.o.d"
  "CMakeFiles/pldp_core.dir/psda.cc.o"
  "CMakeFiles/pldp_core.dir/psda.cc.o.d"
  "CMakeFiles/pldp_core.dir/sign_matrix.cc.o"
  "CMakeFiles/pldp_core.dir/sign_matrix.cc.o.d"
  "CMakeFiles/pldp_core.dir/user_group.cc.o"
  "CMakeFiles/pldp_core.dir/user_group.cc.o.d"
  "libpldp_core.a"
  "libpldp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pldp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
