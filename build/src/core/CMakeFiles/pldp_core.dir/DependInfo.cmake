
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clustering.cc" "src/core/CMakeFiles/pldp_core.dir/clustering.cc.o" "gcc" "src/core/CMakeFiles/pldp_core.dir/clustering.cc.o.d"
  "/root/repo/src/core/consistency.cc" "src/core/CMakeFiles/pldp_core.dir/consistency.cc.o" "gcc" "src/core/CMakeFiles/pldp_core.dir/consistency.cc.o.d"
  "/root/repo/src/core/error_model.cc" "src/core/CMakeFiles/pldp_core.dir/error_model.cc.o" "gcc" "src/core/CMakeFiles/pldp_core.dir/error_model.cc.o.d"
  "/root/repo/src/core/frequency_oracle.cc" "src/core/CMakeFiles/pldp_core.dir/frequency_oracle.cc.o" "gcc" "src/core/CMakeFiles/pldp_core.dir/frequency_oracle.cc.o.d"
  "/root/repo/src/core/heavy_hitters.cc" "src/core/CMakeFiles/pldp_core.dir/heavy_hitters.cc.o" "gcc" "src/core/CMakeFiles/pldp_core.dir/heavy_hitters.cc.o.d"
  "/root/repo/src/core/local_randomizer.cc" "src/core/CMakeFiles/pldp_core.dir/local_randomizer.cc.o" "gcc" "src/core/CMakeFiles/pldp_core.dir/local_randomizer.cc.o.d"
  "/root/repo/src/core/pcep.cc" "src/core/CMakeFiles/pldp_core.dir/pcep.cc.o" "gcc" "src/core/CMakeFiles/pldp_core.dir/pcep.cc.o.d"
  "/root/repo/src/core/privacy_spec.cc" "src/core/CMakeFiles/pldp_core.dir/privacy_spec.cc.o" "gcc" "src/core/CMakeFiles/pldp_core.dir/privacy_spec.cc.o.d"
  "/root/repo/src/core/psda.cc" "src/core/CMakeFiles/pldp_core.dir/psda.cc.o" "gcc" "src/core/CMakeFiles/pldp_core.dir/psda.cc.o.d"
  "/root/repo/src/core/sign_matrix.cc" "src/core/CMakeFiles/pldp_core.dir/sign_matrix.cc.o" "gcc" "src/core/CMakeFiles/pldp_core.dir/sign_matrix.cc.o.d"
  "/root/repo/src/core/user_group.cc" "src/core/CMakeFiles/pldp_core.dir/user_group.cc.o" "gcc" "src/core/CMakeFiles/pldp_core.dir/user_group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/pldp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pldp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
