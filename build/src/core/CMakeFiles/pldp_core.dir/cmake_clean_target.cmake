file(REMOVE_RECURSE
  "libpldp_core.a"
)
