# Empty compiler generated dependencies file for pldp_core.
# This may be replaced when dependencies are built.
