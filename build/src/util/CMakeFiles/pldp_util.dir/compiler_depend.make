# Empty compiler generated dependencies file for pldp_util.
# This may be replaced when dependencies are built.
