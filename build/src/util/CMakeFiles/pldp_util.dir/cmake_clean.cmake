file(REMOVE_RECURSE
  "CMakeFiles/pldp_util.dir/csv.cc.o"
  "CMakeFiles/pldp_util.dir/csv.cc.o.d"
  "CMakeFiles/pldp_util.dir/logging.cc.o"
  "CMakeFiles/pldp_util.dir/logging.cc.o.d"
  "CMakeFiles/pldp_util.dir/status.cc.o"
  "CMakeFiles/pldp_util.dir/status.cc.o.d"
  "libpldp_util.a"
  "libpldp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pldp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
