file(REMOVE_RECURSE
  "libpldp_util.a"
)
