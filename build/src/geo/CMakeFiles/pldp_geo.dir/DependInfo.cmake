
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/bounding_box.cc" "src/geo/CMakeFiles/pldp_geo.dir/bounding_box.cc.o" "gcc" "src/geo/CMakeFiles/pldp_geo.dir/bounding_box.cc.o.d"
  "/root/repo/src/geo/grid.cc" "src/geo/CMakeFiles/pldp_geo.dir/grid.cc.o" "gcc" "src/geo/CMakeFiles/pldp_geo.dir/grid.cc.o.d"
  "/root/repo/src/geo/taxonomy.cc" "src/geo/CMakeFiles/pldp_geo.dir/taxonomy.cc.o" "gcc" "src/geo/CMakeFiles/pldp_geo.dir/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pldp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
