file(REMOVE_RECURSE
  "libpldp_geo.a"
)
