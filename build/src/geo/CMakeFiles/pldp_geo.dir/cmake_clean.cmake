file(REMOVE_RECURSE
  "CMakeFiles/pldp_geo.dir/bounding_box.cc.o"
  "CMakeFiles/pldp_geo.dir/bounding_box.cc.o.d"
  "CMakeFiles/pldp_geo.dir/grid.cc.o"
  "CMakeFiles/pldp_geo.dir/grid.cc.o.d"
  "CMakeFiles/pldp_geo.dir/taxonomy.cc.o"
  "CMakeFiles/pldp_geo.dir/taxonomy.cc.o.d"
  "libpldp_geo.a"
  "libpldp_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pldp_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
