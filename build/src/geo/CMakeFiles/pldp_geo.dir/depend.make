# Empty dependencies file for pldp_geo.
# This may be replaced when dependencies are built.
