file(REMOVE_RECURSE
  "../bench/bench_example41_clustering"
  "../bench/bench_example41_clustering.pdb"
  "CMakeFiles/bench_example41_clustering.dir/bench_example41_clustering.cc.o"
  "CMakeFiles/bench_example41_clustering.dir/bench_example41_clustering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example41_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
