# Empty compiler generated dependencies file for bench_example41_clustering.
# This may be replaced when dependencies are built.
