file(REMOVE_RECURSE
  "../bench/bench_ablation_fanout"
  "../bench/bench_ablation_fanout.pdb"
  "CMakeFiles/bench_ablation_fanout.dir/bench_ablation_fanout.cc.o"
  "CMakeFiles/bench_ablation_fanout.dir/bench_ablation_fanout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
