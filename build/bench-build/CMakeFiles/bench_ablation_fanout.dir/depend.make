# Empty dependencies file for bench_ablation_fanout.
# This may be replaced when dependencies are built.
