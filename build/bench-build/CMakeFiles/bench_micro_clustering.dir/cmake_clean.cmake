file(REMOVE_RECURSE
  "../bench/bench_micro_clustering"
  "../bench/bench_micro_clustering.pdb"
  "CMakeFiles/bench_micro_clustering.dir/bench_micro_clustering.cc.o"
  "CMakeFiles/bench_micro_clustering.dir/bench_micro_clustering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
