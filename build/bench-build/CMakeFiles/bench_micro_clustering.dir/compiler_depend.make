# Empty compiler generated dependencies file for bench_micro_clustering.
# This may be replaced when dependencies are built.
