file(REMOVE_RECURSE
  "../bench/bench_ext_heavy_hitters"
  "../bench/bench_ext_heavy_hitters.pdb"
  "CMakeFiles/bench_ext_heavy_hitters.dir/bench_ext_heavy_hitters.cc.o"
  "CMakeFiles/bench_ext_heavy_hitters.dir/bench_ext_heavy_hitters.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_heavy_hitters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
