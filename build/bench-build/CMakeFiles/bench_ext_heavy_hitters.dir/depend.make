# Empty dependencies file for bench_ext_heavy_hitters.
# This may be replaced when dependencies are built.
