file(REMOVE_RECURSE
  "../bench/bench_micro_protocol"
  "../bench/bench_micro_protocol.pdb"
  "CMakeFiles/bench_micro_protocol.dir/bench_micro_protocol.cc.o"
  "CMakeFiles/bench_micro_protocol.dir/bench_micro_protocol.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
