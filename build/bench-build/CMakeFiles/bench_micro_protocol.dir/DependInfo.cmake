
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_protocol.cc" "bench-build/CMakeFiles/bench_micro_protocol.dir/bench_micro_protocol.cc.o" "gcc" "bench-build/CMakeFiles/bench_micro_protocol.dir/bench_micro_protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/pldp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/pldp_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/pldp_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/pldp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pldp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pldp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/pldp_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pldp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pldp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pldp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
