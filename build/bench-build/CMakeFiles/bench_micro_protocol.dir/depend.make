# Empty dependencies file for bench_micro_protocol.
# This may be replaced when dependencies are built.
