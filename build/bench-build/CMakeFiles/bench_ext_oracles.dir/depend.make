# Empty dependencies file for bench_ext_oracles.
# This may be replaced when dependencies are built.
