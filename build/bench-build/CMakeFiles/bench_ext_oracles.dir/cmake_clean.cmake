file(REMOVE_RECURSE
  "../bench/bench_ext_oracles"
  "../bench/bench_ext_oracles.pdb"
  "CMakeFiles/bench_ext_oracles.dir/bench_ext_oracles.cc.o"
  "CMakeFiles/bench_ext_oracles.dir/bench_ext_oracles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_oracles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
