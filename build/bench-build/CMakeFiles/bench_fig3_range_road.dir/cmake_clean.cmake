file(REMOVE_RECURSE
  "../bench/bench_fig3_range_road"
  "../bench/bench_fig3_range_road.pdb"
  "CMakeFiles/bench_fig3_range_road.dir/bench_fig3_range_road.cc.o"
  "CMakeFiles/bench_fig3_range_road.dir/bench_fig3_range_road.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_range_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
