# Empty compiler generated dependencies file for bench_fig3_range_road.
# This may be replaced when dependencies are built.
