file(REMOVE_RECURSE
  "../bench/bench_table2_kl"
  "../bench/bench_table2_kl.pdb"
  "CMakeFiles/bench_table2_kl.dir/bench_table2_kl.cc.o"
  "CMakeFiles/bench_table2_kl.dir/bench_table2_kl.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_kl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
