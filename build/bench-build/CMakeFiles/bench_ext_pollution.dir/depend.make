# Empty dependencies file for bench_ext_pollution.
# This may be replaced when dependencies are built.
