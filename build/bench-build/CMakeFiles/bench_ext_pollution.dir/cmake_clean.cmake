file(REMOVE_RECURSE
  "../bench/bench_ext_pollution"
  "../bench/bench_ext_pollution.pdb"
  "CMakeFiles/bench_ext_pollution.dir/bench_ext_pollution.cc.o"
  "CMakeFiles/bench_ext_pollution.dir/bench_ext_pollution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pollution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
