# Empty compiler generated dependencies file for bench_fig6_range_storage.
# This may be replaced when dependencies are built.
