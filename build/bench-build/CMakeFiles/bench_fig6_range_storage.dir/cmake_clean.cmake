file(REMOVE_RECURSE
  "../bench/bench_fig6_range_storage"
  "../bench/bench_fig6_range_storage.pdb"
  "CMakeFiles/bench_fig6_range_storage.dir/bench_fig6_range_storage.cc.o"
  "CMakeFiles/bench_fig6_range_storage.dir/bench_fig6_range_storage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_range_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
