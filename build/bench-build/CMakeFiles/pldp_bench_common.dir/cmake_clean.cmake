file(REMOVE_RECURSE
  "CMakeFiles/pldp_bench_common.dir/common.cc.o"
  "CMakeFiles/pldp_bench_common.dir/common.cc.o.d"
  "libpldp_bench_common.a"
  "libpldp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pldp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
