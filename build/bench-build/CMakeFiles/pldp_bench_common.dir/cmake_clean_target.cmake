file(REMOVE_RECURSE
  "libpldp_bench_common.a"
)
