# Empty dependencies file for pldp_bench_common.
# This may be replaced when dependencies are built.
