# Empty compiler generated dependencies file for bench_fig4_range_checkin.
# This may be replaced when dependencies are built.
