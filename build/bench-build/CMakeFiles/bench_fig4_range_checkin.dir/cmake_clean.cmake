file(REMOVE_RECURSE
  "../bench/bench_fig4_range_checkin"
  "../bench/bench_fig4_range_checkin.pdb"
  "CMakeFiles/bench_fig4_range_checkin.dir/bench_fig4_range_checkin.cc.o"
  "CMakeFiles/bench_fig4_range_checkin.dir/bench_fig4_range_checkin.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_range_checkin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
