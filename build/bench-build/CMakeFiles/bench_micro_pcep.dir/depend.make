# Empty dependencies file for bench_micro_pcep.
# This may be replaced when dependencies are built.
