file(REMOVE_RECURSE
  "../bench/bench_micro_pcep"
  "../bench/bench_micro_pcep.pdb"
  "CMakeFiles/bench_micro_pcep.dir/bench_micro_pcep.cc.o"
  "CMakeFiles/bench_micro_pcep.dir/bench_micro_pcep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pcep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
