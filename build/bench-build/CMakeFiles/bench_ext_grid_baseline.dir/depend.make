# Empty dependencies file for bench_ext_grid_baseline.
# This may be replaced when dependencies are built.
