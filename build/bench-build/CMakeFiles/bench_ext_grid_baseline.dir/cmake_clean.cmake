file(REMOVE_RECURSE
  "../bench/bench_ext_grid_baseline"
  "../bench/bench_ext_grid_baseline.pdb"
  "CMakeFiles/bench_ext_grid_baseline.dir/bench_ext_grid_baseline.cc.o"
  "CMakeFiles/bench_ext_grid_baseline.dir/bench_ext_grid_baseline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_grid_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
