# Empty compiler generated dependencies file for bench_ext_dataset_stats.
# This may be replaced when dependencies are built.
