file(REMOVE_RECURSE
  "../bench/bench_ext_dataset_stats"
  "../bench/bench_ext_dataset_stats.pdb"
  "CMakeFiles/bench_ext_dataset_stats.dir/bench_ext_dataset_stats.cc.o"
  "CMakeFiles/bench_ext_dataset_stats.dir/bench_ext_dataset_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
