# Empty dependencies file for bench_ablation_consistency.
# This may be replaced when dependencies are built.
