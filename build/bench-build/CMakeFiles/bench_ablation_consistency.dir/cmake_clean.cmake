file(REMOVE_RECURSE
  "../bench/bench_ablation_consistency"
  "../bench/bench_ablation_consistency.pdb"
  "CMakeFiles/bench_ablation_consistency.dir/bench_ablation_consistency.cc.o"
  "CMakeFiles/bench_ablation_consistency.dir/bench_ablation_consistency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
