# Empty compiler generated dependencies file for bench_fig5_range_landmark.
# This may be replaced when dependencies are built.
