file(REMOVE_RECURSE
  "../bench/bench_fig5_range_landmark"
  "../bench/bench_fig5_range_landmark.pdb"
  "CMakeFiles/bench_fig5_range_landmark.dir/bench_fig5_range_landmark.cc.o"
  "CMakeFiles/bench_fig5_range_landmark.dir/bench_fig5_range_landmark.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_range_landmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
