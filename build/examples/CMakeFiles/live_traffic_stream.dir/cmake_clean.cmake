file(REMOVE_RECURSE
  "CMakeFiles/live_traffic_stream.dir/live_traffic_stream.cpp.o"
  "CMakeFiles/live_traffic_stream.dir/live_traffic_stream.cpp.o.d"
  "live_traffic_stream"
  "live_traffic_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_traffic_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
