# Empty compiler generated dependencies file for live_traffic_stream.
# This may be replaced when dependencies are built.
