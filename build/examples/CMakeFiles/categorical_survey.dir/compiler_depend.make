# Empty compiler generated dependencies file for categorical_survey.
# This may be replaced when dependencies are built.
