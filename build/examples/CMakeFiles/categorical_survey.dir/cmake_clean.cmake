file(REMOVE_RECURSE
  "CMakeFiles/categorical_survey.dir/categorical_survey.cpp.o"
  "CMakeFiles/categorical_survey.dir/categorical_survey.cpp.o.d"
  "categorical_survey"
  "categorical_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/categorical_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
