file(REMOVE_RECURSE
  "CMakeFiles/personalized_privacy.dir/personalized_privacy.cpp.o"
  "CMakeFiles/personalized_privacy.dir/personalized_privacy.cpp.o.d"
  "personalized_privacy"
  "personalized_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personalized_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
