# Empty compiler generated dependencies file for personalized_privacy.
# This may be replaced when dependencies are built.
