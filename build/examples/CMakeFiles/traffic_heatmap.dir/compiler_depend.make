# Empty compiler generated dependencies file for traffic_heatmap.
# This may be replaced when dependencies are built.
