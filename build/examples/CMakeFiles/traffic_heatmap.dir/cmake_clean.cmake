file(REMOVE_RECURSE
  "CMakeFiles/traffic_heatmap.dir/traffic_heatmap.cpp.o"
  "CMakeFiles/traffic_heatmap.dir/traffic_heatmap.cpp.o.d"
  "traffic_heatmap"
  "traffic_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
