file(REMOVE_RECURSE
  "CMakeFiles/range_query_service.dir/range_query_service.cpp.o"
  "CMakeFiles/range_query_service.dir/range_query_service.cpp.o.d"
  "range_query_service"
  "range_query_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_query_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
