# Empty compiler generated dependencies file for range_query_service.
# This may be replaced when dependencies are built.
