
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/range_query_service.cpp" "examples/CMakeFiles/range_query_service.dir/range_query_service.cpp.o" "gcc" "examples/CMakeFiles/range_query_service.dir/range_query_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocol/CMakeFiles/pldp_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/pldp_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/pldp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pldp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pldp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/pldp_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pldp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pldp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pldp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
