// Traffic heatmap: the Waze-style scenario from the paper's introduction.
//
// Commuters' phones report perturbed locations; the untrusted server renders
// a congestion heatmap of the metro area without ever seeing a raw GPS fix.
// This example renders the true and the privately-estimated heatmaps side by
// side as ASCII art so you can eyeball how much structure survives PLDP.
//
// Build & run:  ./build/examples/traffic_heatmap

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "core/psda.h"
#include "eval/metrics.h"
#include "geo/grid.h"
#include "geo/taxonomy.h"
#include "util/random.h"

namespace {

using namespace pldp;

/// Renders a grid of counts as ASCII shades, brightest = busiest.
void RenderHeatmap(const char* title, const UniformGrid& grid,
                   const std::vector<double>& counts) {
  static const char kShades[] = " .:-=+*#%@";
  const double peak = *std::max_element(counts.begin(), counts.end());
  std::printf("%s (peak %.0f users/cell)\n", title, peak);
  for (uint32_t row = grid.rows(); row-- > 0;) {
    std::fputs("  ", stdout);
    for (uint32_t col = 0; col < grid.cols(); ++col) {
      const double value = std::max(counts[grid.IdOf(row, col)], 0.0);
      const int shade =
          peak > 0 ? static_cast<int>(9.0 * std::sqrt(value / peak)) : 0;
      std::putchar(kShades[std::clamp(shade, 0, 9)]);
      std::putchar(kShades[std::clamp(shade, 0, 9)]);
    }
    std::putchar('\n');
  }
  std::putchar('\n');
}

}  // namespace

int main() {
  // A 24x24 metro grid: a dense downtown core, two highway corridors, and
  // suburban background traffic.
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{-122.5, 47.2, -121.3, 48.4}, 0.05, 0.05)
          .value();
  const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();

  Rng rng(20160501);
  std::vector<UserRecord> users;
  std::vector<double> truth(grid.num_cells(), 0.0);
  const GeoPoint downtown{-122.0, 47.8};
  for (int i = 0; i < 120000; ++i) {
    GeoPoint p;
    const double mode = rng.NextDouble();
    if (mode < 0.45) {
      // Downtown core.
      const double r = 0.08 * std::sqrt(rng.NextDouble());
      const double angle = 2 * std::numbers::pi * rng.NextDouble();
      p = {downtown.lon + r * std::cos(angle),
           downtown.lat + r * std::sin(angle)};
    } else if (mode < 0.65) {
      // East-west highway through downtown.
      p = {-122.5 + 1.2 * rng.NextDouble(),
           downtown.lat + 0.02 * (rng.NextDouble() - 0.5)};
    } else if (mode < 0.8) {
      // North-south highway.
      p = {downtown.lon + 0.02 * (rng.NextDouble() - 0.5),
           47.2 + 1.2 * rng.NextDouble()};
    } else {
      p = {-122.5 + 1.2 * rng.NextDouble(), 47.2 + 1.2 * rng.NextDouble()};
    }
    const CellId cell = grid.CellOfClamped(p);
    truth[cell] += 1.0;

    // Commuters on the highways are privacy-conscious (coarse safe regions,
    // small epsilon); downtown shoppers less so.
    UserRecord user;
    user.cell = cell;
    const uint32_t steps = mode < 0.45 ? 1 + rng.NextUint64(2)
                                       : 2 + rng.NextUint64(2);
    user.spec.safe_region =
        taxonomy.AncestorAbove(taxonomy.LeafNodeOfCell(cell), steps);
    user.spec.epsilon = mode < 0.45 ? 1.0 : 0.5;
    users.push_back(user);
  }

  PsdaOptions options;
  options.seed = 7;
  const PsdaResult result = RunPsda(taxonomy, users, options).value();

  RenderHeatmap("TRUE TRAFFIC", grid, truth);
  RenderHeatmap("PLDP ESTIMATE (what the untrusted server sees)", grid,
                result.counts);

  std::printf("KL divergence (true || estimate): %.4f\n",
              KlDivergence(truth, result.counts).value());
  std::printf("max absolute error: %.1f of %zu commuters\n",
              MaxAbsoluteError(truth, result.counts).value(), users.size());
  std::printf("clusters used: %zu, merges: %u\n",
              result.clustering.clusters.size(), result.clustering.merges);
  return 0;
}
