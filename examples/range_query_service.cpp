// Range-query service over the message-level protocol.
//
// Exercises the full client/server stack: every user is a DeviceClient whose
// location never leaves the object unperturbed; the AggregationServer runs
// Algorithm 4 over the serialized wire format. The resulting private
// histogram then answers arbitrary rectangular "how many users in this
// area?" queries - the workload of the paper's Figures 3-6 - and the example
// prints the per-user communication cost the paper analyzes in Section IV-A.
//
// Build & run:  ./build/examples/range_query_service

#include <cstdio>

#include "data/spec_assignment.h"
#include "data/synthetic.h"
#include "eval/range_query.h"
#include "eval/range_summary.h"
#include "geo/taxonomy.h"
#include "protocol/client.h"
#include "protocol/server.h"
#include "util/random.h"

int main() {
  using namespace pldp;

  const Dataset dataset = GenerateStorage(/*scale=*/1.0, /*seed=*/3);
  const UniformGrid grid = dataset.MakeGrid().value();
  const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();
  const std::vector<CellId> cells = dataset.ToCells(grid);
  const std::vector<UserRecord> users =
      AssignSpecs(taxonomy, cells, SafeRegionsS2(), EpsilonsE2(), 17).value();

  // Instantiate one on-device client per user; each owns its private
  // location and its RNG.
  std::vector<DeviceClient> clients;
  clients.reserve(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    clients.emplace_back(&taxonomy, users[i].cell, users[i].spec,
                         SplitMix64(0xC11E47 ^ (i + 1)));
  }

  AggregationServer server(&taxonomy, PsdaOptions());
  ProtocolStats stats;
  const PsdaResult result = server.Collect(&clients, &stats).value();

  std::printf("protocol finished: %zu clients, %lu dropped\n", clients.size(),
              static_cast<unsigned long>(stats.dropped_clients));
  std::printf("  downlink: %8.1f bytes/user (O(|tau|) packed JL row)\n",
              static_cast<double>(stats.bytes_to_clients) / clients.size());
  std::printf("  uplink:   %8.1f bytes/user (spec + 1-byte report)\n\n",
              static_cast<double>(stats.bytes_to_server) / clients.size());

  // Build the O(1)-per-query serving structure once, then answer range
  // queries of growing size against the private histogram.
  const RangeSummary summary = RangeSummary::Build(grid, result.counts).value();
  std::printf("%-28s %10s %12s %10s\n", "query (2x2 deg, random)", "true",
              "estimated", "rel.err");
  const double sanity = dataset.sanity_fraction * dataset.num_users();
  double size = dataset.q1_width;
  for (int qi = 1; qi <= 6; ++qi, size *= 1.5) {
    const auto queries =
        GenerateRangeQueries(dataset.domain, size, size, 50, 100 + qi).value();
    double truth_sample = AnswerFromPoints(dataset.points, queries[0]);
    double estimate_sample = summary.Answer(queries[0]);
    const double mean_err =
        MeanRangeQueryError(grid, result.counts, dataset.points, queries,
                            sanity)
            .value();
    std::printf("q%d (%5.1f x %5.1f deg)        %10.0f %12.1f %9.3f\n", qi,
                size, size, truth_sample, estimate_sample, mean_err);
  }
  std::printf("\n(rel.err column = mean over 50 random queries per size)\n");
  return 0;
}
