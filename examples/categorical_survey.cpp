// PLDP beyond geography: categorical data under a taxonomy.
//
// Section III-B: "while we introduce (tau, eps)-PLDP in the context of
// spatial data, it can be readily extended to another data domain where a
// user's privacy can be meaningfully defined via a data-independent taxonomy
// structure." This example aggregates a product-category survey: 64 leaf
// categories arranged as a 1 x 64 domain, whose fanout-4 taxonomy degrades
// to a hierarchy of dyadic category groups (departments / aisles / shelves).
// A user may say "I'm comfortable revealing I bought something in
// Electronics" (a coarse node) while hiding the exact product category.
//
// Build & run:  ./build/examples/categorical_survey

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "core/psda.h"
#include "eval/metrics.h"
#include "geo/grid.h"
#include "geo/taxonomy.h"
#include "util/random.h"

namespace {

// Invent readable names for the 8 top-level "departments" (8 leaves each).
const char* kDepartments[] = {"Groceries",   "Electronics", "Clothing",
                              "Home",        "Sports",      "Toys",
                              "Books",       "Pharmacy"};

}  // namespace

int main() {
  using namespace pldp;

  // A 1-D "spatial" domain: 64 cells in one row. The taxonomy machinery is
  // agnostic to geography - nodes are just index ranges.
  const UniformGrid domain =
      UniformGrid::Create(BoundingBox{0.0, 0.0, 64.0, 1.0}, 1.0, 1.0).value();
  const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(domain, 4).value();
  std::printf("categories: %u leaves, taxonomy height %u\n\n",
              domain.num_cells(), taxonomy.height());

  // Simulate a purchase survey: department popularity is skewed, and within
  // a department one or two categories dominate.
  Rng rng(777);
  std::vector<UserRecord> users;
  std::vector<double> truth(domain.num_cells(), 0.0);
  for (int i = 0; i < 80000; ++i) {
    const uint32_t department = static_cast<uint32_t>(
        8.0 * std::pow(rng.NextDouble(), 2.0));
    const uint32_t offset = rng.Bernoulli(0.6)
                                ? rng.NextUint64(2)
                                : rng.NextUint64(8);
    const CellId category = std::min<CellId>(department * 8 + offset, 63);
    truth[category] += 1.0;

    // Privacy: pharmacy buyers hide up to the department; groceries buyers
    // mostly share the exact category.
    UserRecord user;
    user.cell = category;
    const uint32_t steps =
        department == 7 ? 3 : (rng.Bernoulli(0.5) ? 1 : 0);
    user.spec.safe_region =
        taxonomy.AncestorAbove(taxonomy.LeafNodeOfCell(category), steps);
    user.spec.epsilon = department == 7 ? 0.5 : 1.0;
    users.push_back(user);
  }

  PsdaOptions options;
  options.seed = 4242;
  const PsdaResult result = RunPsda(taxonomy, users, options).value();

  std::printf("%-12s %10s %12s %10s\n", "department", "true", "estimated",
              "rel.err");
  for (uint32_t d = 0; d < 8; ++d) {
    double true_total = 0.0, est_total = 0.0;
    for (uint32_t c = d * 8; c < d * 8 + 8; ++c) {
      true_total += truth[c];
      est_total += result.counts[c];
    }
    std::printf("%-12s %10.0f %12.1f %9.1f%%\n", kDepartments[d], true_total,
                est_total,
                100.0 * std::abs(est_total - true_total) /
                    std::max(true_total, 1.0));
  }

  std::printf("\ntop categories (true vs estimated):\n");
  std::vector<CellId> order(domain.num_cells());
  for (CellId c = 0; c < order.size(); ++c) order[c] = c;
  std::sort(order.begin(), order.end(),
            [&](CellId a, CellId b) { return truth[a] > truth[b]; });
  for (int rank = 0; rank < 5; ++rank) {
    const CellId c = order[rank];
    std::printf("  %s/cat%02u: %8.0f vs %8.1f\n", kDepartments[c / 8], c % 8,
                truth[c], result.counts[c]);
  }
  std::printf("\nKL divergence over all 64 categories: %.4f\n",
              KlDivergence(truth, result.counts).value());
  std::printf("(the pharmacy department stays accurate in aggregate while "
              "its per-category counts are deliberately blurred)\n");
  return 0;
}
