// Quickstart: the smallest end-to-end use of the pldp library.
//
// An untrusted server wants the distribution of users over a city grid
// without learning any individual's location. Each user holds one private
// location and a personalized privacy specification (safe region + epsilon);
// the PSDA framework aggregates them under personalized local differential
// privacy (PLDP).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/psda.h"
#include "geo/grid.h"
#include "geo/taxonomy.h"
#include "util/random.h"

int main() {
  using namespace pldp;

  // 1. The public spatial domain: a 16x16 grid of 1-degree cells, with the
  //    fanout-4 taxonomy every participant shares (Figure 2 of the paper).
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0.0, 0.0, 16.0, 16.0}, 1.0, 1.0).value();
  const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();
  std::printf("domain: %u cells, taxonomy height %u, %zu nodes\n\n",
              grid.num_cells(), taxonomy.height(), taxonomy.num_nodes());

  // 2. A cohort of users. Most are downtown (cells 0-3); each user picks a
  //    safe region (here: the parent of their leaf) and a personal epsilon.
  Rng rng(2016);
  std::vector<UserRecord> users;
  std::vector<double> truth(grid.num_cells(), 0.0);
  for (int i = 0; i < 50000; ++i) {
    const CellId cell = rng.Bernoulli(0.6)
                            ? static_cast<CellId>(rng.NextUint64(4))
                            : static_cast<CellId>(
                                  rng.NextUint64(grid.num_cells()));
    UserRecord user;
    user.cell = cell;
    user.spec.safe_region =
        taxonomy.AncestorAbove(taxonomy.LeafNodeOfCell(cell),
                               /*steps=*/1 + rng.NextUint64(2));
    user.spec.epsilon = rng.Bernoulli(0.5) ? 0.5 : 1.0;
    users.push_back(user);
    truth[cell] += 1.0;
  }

  // 3. Run the PSDA framework (Algorithm 4): grouping, user-group
  //    clustering, one PCEP per cluster, consistency post-processing.
  PsdaOptions options;
  options.beta = 0.1;   // bounds hold with probability >= 0.9
  options.seed = 42;
  const PsdaResult result = RunPsda(taxonomy, users, options).value();

  std::printf("clusters: %zu (from %u merges), objective %.1f -> %.1f\n",
              result.clustering.clusters.size(), result.clustering.merges,
              result.clustering.initial_max_path_error,
              result.clustering.final_max_path_error);
  std::printf("server time: %.3f s\n\n", result.server_seconds);

  // 4. Compare estimates with the truth on the busiest cells.
  std::printf("%8s %12s %12s\n", "cell", "true", "estimated");
  for (CellId cell = 0; cell < 6; ++cell) {
    std::printf("%8u %12.0f %12.1f\n", cell, truth[cell],
                result.counts[cell]);
  }
  double max_err = 0.0;
  for (CellId cell = 0; cell < grid.num_cells(); ++cell) {
    max_err = std::max(max_err,
                       std::abs(truth[cell] - result.counts[cell]));
  }
  std::printf("\nmax absolute error over all %u cells: %.1f (of %zu users)\n",
              grid.num_cells(), max_err, users.size());
  return 0;
}
