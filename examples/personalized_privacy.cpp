// Personalized privacy: why PLDP beats one-size-fits-all LDP.
//
// Runs the same cohort under the paper's four privacy-specification settings
// (S1/S2 x E1/E2) and compares PSDA against the SR baseline (a single
// protocol over the whole universe, i.e. plain LDP with personalized
// epsilons). The gap is the utility bought by letting each user declare a
// safe region - the core argument of the paper.
//
// Build & run:  ./build/examples/personalized_privacy

#include <cstdio>

#include "baselines/sr.h"
#include "core/psda.h"
#include "data/spec_assignment.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "geo/taxonomy.h"

int main() {
  using namespace pldp;

  // A scaled-down landmark-like dataset (continental US, 1-degree cells).
  const Dataset dataset = GenerateLandmark(/*scale=*/0.05, /*seed=*/9);
  const UniformGrid grid = dataset.MakeGrid().value();
  const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();
  const std::vector<CellId> cells = dataset.ToCells(grid);
  const std::vector<double> truth = dataset.TrueHistogram(grid);

  std::printf("dataset: %s-like, %zu users, %u cells\n\n",
              dataset.name.c_str(), dataset.num_users(), grid.num_cells());
  std::printf("%-10s %-14s %-14s %-10s\n", "setting", "PSDA (PLDP)",
              "SR (plain LDP)", "SR/PSDA");

  const SafeRegionDistribution safe_regions[] = {SafeRegionsS1(),
                                                 SafeRegionsS2()};
  const EpsilonDistribution epsilon_menus[] = {EpsilonsE1(), EpsilonsE2()};

  for (const auto& s : safe_regions) {
    for (const auto& e : epsilon_menus) {
      const std::vector<UserRecord> users =
          AssignSpecs(taxonomy, cells, s, e, /*seed=*/31).value();

      PsdaOptions options;
      options.seed = 1001;
      const PsdaResult psda = RunPsda(taxonomy, users, options).value();
      const double kl_psda = KlDivergence(truth, psda.counts).value();

      const std::vector<double> sr = RunSr(taxonomy, users, options).value();
      const double kl_sr = KlDivergence(truth, sr).value();

      std::printf("(%s, %s)   %-14.4f %-14.4f %.1fx\n", s.name.c_str(),
                  e.name.c_str(), kl_psda, kl_sr, kl_sr / kl_psda);
    }
  }

  std::printf(
      "\nTakeaway: with safe regions (PLDP), accuracy improves by an order\n"
      "of magnitude while each user's chosen indistinguishability guarantee\n"
      "within their safe region is untouched.\n");
  return 0;
}
