// Continuous aggregation: a day of Waze-style traffic, one PSDA round per
// epoch, with participation rate-limiting and EWMA smoothing.
//
// The population drifts over six epochs (night -> morning commute ->
// midday -> evening commute -> night); the server tracks the distribution
// while every individual report stays (tau, eps)-PLDP and no pseudonym
// reports more than once per two epochs.
//
// Build & run:  ./build/examples/live_traffic_stream

#include <cmath>
#include <cstdio>

#include "eval/metrics.h"
#include "geo/grid.h"
#include "geo/taxonomy.h"
#include "stream/continuous.h"
#include "util/random.h"

namespace {

using namespace pldp;

/// Population snapshot for an epoch: commuters concentrate around either the
/// residential west side or the downtown east side.
std::vector<StreamUser> Snapshot(const SpatialTaxonomy& tax, double downtown,
                                 uint64_t epoch, std::vector<double>* truth) {
  const UniformGrid& grid = tax.grid();
  truth->assign(grid.num_cells(), 0.0);
  Rng rng(1000 + epoch);
  std::vector<StreamUser> users;
  for (int i = 0; i < 30000; ++i) {
    const bool east = rng.Bernoulli(downtown);
    const uint32_t col = east ? 12 + rng.NextUint64(4) : rng.NextUint64(4);
    const uint32_t row = static_cast<uint32_t>(rng.NextUint64(16));
    const CellId cell = grid.IdOf(row, col);
    (*truth)[cell] += 1.0;

    StreamUser user;
    // Two pseudonym pools alternate across epochs, exercising rate limiting.
    user.user_id = (epoch % 2) * 1'000'000 + i;
    user.record.cell = cell;
    user.record.spec.safe_region =
        tax.AncestorAbove(tax.LeafNodeOfCell(cell), 1 + rng.NextUint64(2));
    user.record.spec.epsilon = 1.0;
    users.push_back(user);
  }
  return users;
}

}  // namespace

int main() {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, 16, 16}, 1, 1).value();
  const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();

  StreamOptions options;
  options.smoothing = 0.6;             // favor fresh traffic
  options.participation_period = 2;    // a pseudonym reports every 2nd epoch
  ContinuousAggregator aggregator(&taxonomy, options);

  const char* epoch_names[] = {"night", "early commute", "rush hour",
                               "midday", "evening rush", "late night"};
  const double downtown_share[] = {0.15, 0.5, 0.85, 0.6, 0.8, 0.2};

  std::printf("%-15s %12s %12s %10s %10s %10s\n", "epoch", "participants",
              "rate-limited", "KL", "west", "downtown");
  for (uint64_t epoch = 0; epoch < 6; ++epoch) {
    std::vector<double> truth;
    const auto users =
        Snapshot(taxonomy, downtown_share[epoch], epoch, &truth);
    const auto estimate = aggregator.ProcessEpoch(users).value();
    const EpochStats& stats = aggregator.last_stats();

    double west = 0.0, east = 0.0;
    for (CellId cell = 0; cell < grid.num_cells(); ++cell) {
      (grid.ColOf(cell) < 8 ? west : east) += estimate[cell];
    }
    std::printf("%-15s %12zu %12zu %10.4f %9.0f%% %9.0f%%\n",
                epoch_names[epoch], stats.participated, stats.rate_limited,
                KlDivergence(truth, estimate).value(),
                100.0 * west / (west + east), 100.0 * east / (west + east));
  }
  std::printf(
      "\nThe estimated mass tracks the commute wave with one epoch of EWMA "
      "lag;\nevery report was sanitized on-device and no pseudonym reported "
      "twice\nwithin the participation window.\n");
  return 0;
}
