// Extension: spatial-skew statistics of the synthetic Table I analogs.
// These are the dataset properties the substitution argument of DESIGN.md
// section 2 relies on; print them so a reader holding the real datasets can
// compare directly (load them via pldp_cli / LoadPointsCsv).

#include <cstdio>

#include "common.h"
#include "data/stats.h"
#include "util/logging.h"

int main() {
  using namespace pldp;
  using namespace pldp::bench;

  BenchReport report("ext_dataset_stats");
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner("Extension: dataset skew statistics", profile);

  for (const std::string& name : BenchmarkDatasetNames()) {
    Stopwatch timer;
    const auto dataset =
        GenerateByName(name, DatasetScale(profile, name), 2016);
    PLDP_CHECK(dataset.ok()) << dataset.status();
    const auto stats = ComputeDatasetStats(dataset.value());
    report.AddSample(name, timer.ElapsedSeconds());
    PLDP_CHECK(stats.ok()) << stats.status();
    report.AddCaseStat(name, "users",
                       static_cast<double>(dataset->num_users()));
    std::printf("%s\n", FormatDatasetStats(name, stats.value()).c_str());
  }
  std::printf("\nTable I reference cardinalities (scale 1.0): road 1,634,165"
              " / checkin 1,000,000 / landmark 870,051 / storage 8,938\n");
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
