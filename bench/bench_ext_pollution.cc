// Extension: data-pollution attacks (Section III-C declares them out of
// scope; this bench quantifies the exposure so deployments can reason about
// it). Two coalition strategies against one PCEP instance:
//
//   fake-location  - protocol-compliant lying: ~1 injected count/attacker
//   optimal-bias   - protocol deviation + a tiny self-declared epsilon:
//                    ~c_eps injected counts/attacker (c_0.1 ~ 20), because
//                    the server scales reports by the *claimed* epsilon.
//
// The asymmetry is the actionable finding: bounding the smallest acceptable
// epsilon bounds the amplification an attacker can buy.

#include <cstdio>

#include "common.h"
#include "core/error_model.h"
#include "eval/attack.h"
#include "util/logging.h"

int main() {
  using namespace pldp;
  using namespace pldp::bench;

  BenchReport report("ext_pollution");
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner("Extension: data-pollution attacks on PCEP", profile);

  const int n_honest = 50000;
  const uint64_t width = 64;
  std::vector<PcepUser> honest;
  honest.reserve(n_honest);
  for (int i = 0; i < n_honest; ++i) {
    honest.push_back({static_cast<uint32_t>(i % width), 1.0});
  }

  std::printf("honest cohort: %d users over %lu locations "
              "(~%d per location)\n\n",
              n_honest, static_cast<unsigned long>(width),
              n_honest / static_cast<int>(width));
  std::printf("%-14s %10s %8s %12s %12s %14s\n", "strategy", "attackers",
              "eps", "clean", "attacked", "inject/attkr");

  for (const auto strategy : {PollutionStrategy::kFakeLocation,
                              PollutionStrategy::kOptimalBias}) {
    for (const double fraction : {0.001, 0.01, 0.05}) {
      for (const double eps : {0.1, 1.0}) {
        PollutionConfig config;
        config.strategy = strategy;
        config.num_malicious = static_cast<size_t>(n_honest * fraction);
        config.target = 7;
        config.claimed_epsilon = eps;

        const std::string case_name =
            std::string(strategy == PollutionStrategy::kFakeLocation
                            ? "fake_location"
                            : "optimal_bias") +
            "/frac_" + std::to_string(fraction) + "/eps_" +
            std::to_string(eps);
        double clean = 0.0, attacked = 0.0, per_attacker = 0.0;
        for (int run = 0; run < profile.runs; ++run) {
          PcepParams params;
          params.seed = 0xA77AC4 + run;
          Stopwatch timer;
          const auto outcome =
              SimulatePcepPollution(honest, width, config, params);
          report.AddSample(case_name, timer.ElapsedSeconds());
          PLDP_CHECK(outcome.ok()) << outcome.status();
          clean += outcome->target_clean;
          attacked += outcome->target_attacked;
          per_attacker += outcome->amplification_per_attacker;
        }
        report.AddCaseStat(case_name, "target_clean",
                           clean / profile.runs);
        report.AddCaseStat(case_name, "target_attacked",
                           attacked / profile.runs);
        report.AddCaseStat(case_name, "inject_per_attacker",
                           per_attacker / profile.runs);
        std::printf("%-14s %10zu %8.2f %12.1f %12.1f %14.2f\n",
                    strategy == PollutionStrategy::kFakeLocation
                        ? "fake-location"
                        : "optimal-bias",
                    config.num_malicious, eps, clean / profile.runs,
                    attacked / profile.runs, per_attacker / profile.runs);
      }
    }
  }
  std::printf("\n(theory: fake-location injects ~1/attacker; optimal-bias "
              "injects ~c_eps: c_0.1 = %.1f, c_1.0 = %.1f)\n",
              CEpsilon(0.1), CEpsilon(1.0));
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
