// Reproduces Figure 6: relative errors of range queries on storage.
#include "common.h"

int main() {
  return pldp::bench::RunRangeFigure("fig6_range_storage",
                                     "Figure 6: range queries on storage",
                                     "storage");
}
