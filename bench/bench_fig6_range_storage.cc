// Reproduces Figure 6: relative errors of range queries on storage.
#include "common.h"

int main() {
  return pldp::bench::RunRangeFigure("Figure 6: range queries on storage",
                                     "storage");
}
