// Ablation for the consistency post-processing (Algorithm 4, line 10): how
// much do the public [lb, ub] constraints and sum-consistency improve the
// estimates? Reports MAE and KL with and without the step.

#include <cstdio>

#include "common.h"
#include "core/psda.h"
#include "eval/metrics.h"
#include "util/logging.h"

int main() {
  using namespace pldp;
  using namespace pldp::bench;

  BenchReport report("ablation_consistency");
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner("Ablation: consistency post-processing", profile);

  std::printf("%-10s %11s %11s %11s %11s\n", "Dataset", "MAE(raw)",
              "MAE(cons.)", "KL(raw)", "KL(cons.)");
  for (const std::string& name : BenchmarkDatasetNames()) {
    const auto setup =
        PrepareExperiment(name, DatasetScale(profile, name), 2016);
    PLDP_CHECK(setup.ok()) << setup.status();
    const auto users = AssignSpecs(setup->taxonomy, setup->cells,
                                   SafeRegionsS1(), EpsilonsE1(), 59);
    PLDP_CHECK(users.ok()) << users.status();

    double mae_raw = 0.0, mae_cons = 0.0, kl_raw = 0.0, kl_cons = 0.0;
    for (int run = 0; run < profile.runs; ++run) {
      PsdaOptions options;
      options.seed = 7000 + 1000 * run;
      Stopwatch timer;
      const auto result = RunPsda(setup->taxonomy, users.value(), options);
      report.AddSample(name, timer.ElapsedSeconds());
      PLDP_CHECK(result.ok()) << result.status();
      mae_raw +=
          MaxAbsoluteError(setup->true_histogram, result->raw_counts).value();
      mae_cons +=
          MaxAbsoluteError(setup->true_histogram, result->counts).value();
      kl_raw +=
          KlDivergence(setup->true_histogram, result->raw_counts).value();
      kl_cons += KlDivergence(setup->true_histogram, result->counts).value();
    }
    report.AddCaseStat(name, "mae_raw", mae_raw / profile.runs);
    report.AddCaseStat(name, "mae_consistent", mae_cons / profile.runs);
    report.AddCaseStat(name, "kl_raw", kl_raw / profile.runs);
    report.AddCaseStat(name, "kl_consistent", kl_cons / profile.runs);
    std::printf("%-10s %11.1f %11.1f %11.4f %11.4f\n", name.c_str(),
                mae_raw / profile.runs, mae_cons / profile.runs,
                kl_raw / profile.runs, kl_cons / profile.runs);
  }
  std::printf("\n(consistency should never hurt: it projects onto public "
              "constraints)\n");
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
