// Ablation for Section IV-B's claim: "Algorithm 3 reduces the MAE, on
// average, by 14.65% with only a small runtime" (over the four datasets).
//
// Compares PSDA with the agglomerative clustering against the "finest"
// extreme (one PCEP per user group) and reports measured MAE, the reduction,
// and the clustering wall-clock overhead.

#include <cstdio>

#include "common.h"
#include "core/psda.h"
#include "eval/metrics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

int main() {
  using namespace pldp;
  using namespace pldp::bench;

  BenchReport report("ablation_clustering");
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner("Ablation: user-group clustering (Algorithm 3)",
                     profile);

  std::printf("%-10s %12s %12s %10s %10s %10s\n", "Dataset", "MAE(finest)",
              "MAE(Alg.3)", "reduction", "merges", "extra(s)");

  double total_reduction = 0.0;
  int measured = 0;
  for (const std::string& name : BenchmarkDatasetNames()) {
    const auto setup =
        PrepareExperiment(name, DatasetScale(profile, name), 2016);
    PLDP_CHECK(setup.ok()) << setup.status();
    const auto users = AssignSpecs(setup->taxonomy, setup->cells,
                                   SafeRegionsS1(), EpsilonsE1(), 53);
    PLDP_CHECK(users.ok()) << users.status();

    double mae_finest = 0.0, mae_clustered = 0.0;
    double seconds_finest = 0.0, seconds_clustered = 0.0;
    uint32_t merges = 0;
    for (int run = 0; run < profile.runs; ++run) {
      PsdaOptions options;
      options.seed = 6000 + 1000 * run;

      options.enable_clustering = false;
      const auto finest = RunPsda(setup->taxonomy, users.value(), options);
      PLDP_CHECK(finest.ok()) << finest.status();
      report.AddSample(name + "/finest", finest->server_seconds);
      mae_finest +=
          MaxAbsoluteError(setup->true_histogram, finest->counts).value();
      seconds_finest += finest->server_seconds;

      options.enable_clustering = true;
      const auto clustered = RunPsda(setup->taxonomy, users.value(), options);
      PLDP_CHECK(clustered.ok()) << clustered.status();
      report.AddSample(name + "/clustered", clustered->server_seconds);
      mae_clustered +=
          MaxAbsoluteError(setup->true_histogram, clustered->counts).value();
      seconds_clustered += clustered->server_seconds;
      merges = clustered->clustering.merges;
    }
    mae_finest /= profile.runs;
    mae_clustered /= profile.runs;
    const double reduction = 100.0 * (1.0 - mae_clustered / mae_finest);
    report.AddCaseStat(name + "/finest", "mae", mae_finest);
    report.AddCaseStat(name + "/clustered", "mae", mae_clustered);
    report.AddCaseStat(name + "/clustered", "merges", merges);
    report.AddCaseStat(name + "/clustered", "mae_reduction_pct", reduction);
    total_reduction += reduction;
    ++measured;
    std::printf("%-10s %12.1f %12.1f %9.2f%% %10u %10.3f\n", name.c_str(),
                mae_finest, mae_clustered, reduction, merges,
                (seconds_clustered - seconds_finest) / profile.runs);
  }
  std::printf("\naverage MAE reduction: %.2f%% (paper reports 14.65%%)\n",
              total_reduction / measured);
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
