// Crash-recovery cost of the durable checkpoint path: seeded kill/restore
// epochs through the chaos harness, reporting recovery time, shed fraction,
// and the recovery-correctness verdicts (bit-identical / within the
// Theorem 4.5 envelope) as benchdiff-gated case stats.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common.h"
#include "data/spec_assignment.h"
#include "data/synthetic.h"
#include "eval/chaos.h"
#include "util/logging.h"
#include "util/stopwatch.h"

int main() {
  using namespace pldp;
  using namespace pldp::bench;

  bench::BenchReport report("chaos_recovery");
  const BenchProfile profile = GetBenchProfile();
  // >= 3 epochs per the acceptance criterion; the paper profile runs more.
  const uint32_t epochs =
      static_cast<uint32_t>(std::max(3, std::min(profile.runs, 5)));
  report.AddParam("epochs", static_cast<uint64_t>(epochs));

  const Dataset dataset = GenerateByName("storage", 0.5, 4).value();
  const UniformGrid grid = dataset.MakeGrid().value();
  const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();
  const std::vector<CellId> cells = dataset.ToCells(grid);
  const std::vector<UserRecord> users =
      AssignSpecs(taxonomy, cells, SafeRegionsS2(), EpsilonsE2(), 2016)
          .value();
  report.AddParam("users", static_cast<uint64_t>(users.size()));

  const std::string ckpt_root =
      (std::filesystem::temp_directory_path() / "pldp_bench_chaos").string();

  std::printf("=== Chaos recovery: kill/restore vs clean and overloaded "
              "ingest ===\n\n");
  std::printf("%12s %10s %14s %14s %12s %12s\n", "case", "epochs",
              "recovery ms", "shed frac", "identical", "in bound");

  struct Scenario {
    const char* name;
    double shed;
    double crash_prob;
  };
  const Scenario scenarios[] = {
      {"clean", 0.0, 0.0},
      {"overload", 0.1, 0.0},
      {"crashy", 0.1, 0.05},
  };

  for (const Scenario& scenario : scenarios) {
    ChaosOptions options;
    options.epochs = epochs;
    options.checkpoint_dir = ckpt_root + "/" + scenario.name;
    options.checkpoint_every = 16;
    options.faults.crash_probability = scenario.crash_prob;
    options.retry.max_attempts = 4;
    if (scenario.shed > 0.0) {
      options.admission.max_queue_depth = 64;
      options.admission.service_per_arrival = 1.0 - scenario.shed;
    }
    std::filesystem::remove_all(options.checkpoint_dir);

    Stopwatch timer;
    const auto sweep = RunChaosSweep(taxonomy, users, options);
    const double wall = timer.ElapsedSeconds();
    PLDP_CHECK(sweep.ok()) << sweep.status();
    std::filesystem::remove_all(options.checkpoint_dir);

    double recovery_ms = 0.0, shed_fraction = 0.0;
    uint64_t identical = 0, within = 0;
    for (const ChaosEpochResult& r : *sweep) {
      recovery_ms += r.recovery_ms;
      shed_fraction += r.shed_fraction;
      identical += r.identical ? 1 : 0;
      within += r.within_bound ? 1 : 0;
      report.AddSample(scenario.name, r.recovery_ms / 1000.0);
    }
    recovery_ms /= sweep->size();
    shed_fraction /= sweep->size();

    report.AddCaseStat(scenario.name, "recovery_time_ms", recovery_ms);
    report.AddCaseStat(scenario.name, "shed_fraction", shed_fraction);
    report.AddCaseStat(scenario.name, "identical_epochs",
                       static_cast<double>(identical));
    report.AddCaseStat(scenario.name, "within_bound_epochs",
                       static_cast<double>(within));
    report.AddCaseStat(scenario.name, "sweep_seconds", wall);
    std::printf("%12s %10u %14.3f %14.4f %9llu/%llu %9llu/%llu\n",
                scenario.name, epochs, recovery_ms, shed_fraction,
                static_cast<unsigned long long>(identical),
                static_cast<unsigned long long>(sweep->size()),
                static_cast<unsigned long long>(within),
                static_cast<unsigned long long>(sweep->size()));
    PLDP_CHECK(within == sweep->size())
        << scenario.name << ": recovery left the Theorem 4.5 envelope";
  }

  std::printf("\nclean recovery is bit-identical by construction; overload "
              "degrades gracefully within the bound.\n");
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
