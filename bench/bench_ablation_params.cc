// Ablation: PSDA error versus the privacy parameters, with the Theorem 4.5
// analytical bound alongside the measured error. Two sweeps on landmark:
//   (1) uniform epsilon for all users (safe regions from S2),
//   (2) the confidence parameter beta.
// The measured MAE should sit below the bound and follow its shape
// (~ c_eps * sqrt(n)), demonstrating how loose/tight the theory is - useful
// when choosing parameters for a deployment.

#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/error_model.h"
#include "core/psda.h"
#include "eval/metrics.h"
#include "util/logging.h"

int main() {
  using namespace pldp;
  using namespace pldp::bench;

  BenchReport report("ablation_params");
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner("Ablation: epsilon and beta sweeps", profile);

  const auto setup =
      PrepareExperiment("landmark", DatasetScale(profile, "landmark"), 2016);
  PLDP_CHECK(setup.ok()) << setup.status();
  const size_t n = setup->cells.size();

  std::printf("(1) uniform-epsilon sweep (S2 safe regions, beta = 0.1)\n");
  std::printf("%8s %12s %12s %14s\n", "eps", "MAE", "KL",
              "Thm4.5 (1 cluster)");
  for (const double eps : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    EpsilonDistribution uniform_eps{"uniform", {eps}};
    const auto users = AssignSpecs(setup->taxonomy, setup->cells,
                                   SafeRegionsS2(), uniform_eps, 91);
    PLDP_CHECK(users.ok()) << users.status();
    const std::string case_name = "eps_sweep/eps_" + std::to_string(eps);
    double mae = 0.0, kl = 0.0;
    for (int run = 0; run < profile.runs; ++run) {
      PsdaOptions options;
      options.seed = 10000 + run;
      Stopwatch timer;
      const auto result = RunPsda(setup->taxonomy, users.value(), options);
      report.AddSample(case_name, timer.ElapsedSeconds());
      PLDP_CHECK(result.ok()) << result.status();
      mae += MaxAbsoluteError(setup->true_histogram, result->counts).value();
      kl += KlDivergence(setup->true_histogram, result->counts).value();
    }
    // Reference: one protocol over the whole universe at this epsilon.
    const double bound = PcepErrorBound(
        0.1, static_cast<double>(n),
        static_cast<double>(setup->taxonomy.grid().num_cells()),
        static_cast<double>(n) * PrivacyFactorTerm(eps));
    report.AddCaseStat(case_name, "mae", mae / profile.runs);
    report.AddCaseStat(case_name, "kl", kl / profile.runs);
    report.AddCaseStat(case_name, "thm45_bound", bound);
    std::printf("%8.2f %12.1f %12.4f %14.1f\n", eps, mae / profile.runs,
                kl / profile.runs, bound);
  }

  std::printf("\n(2) beta sweep (S2/E2 cohort)\n");
  std::printf("%8s %12s %12s\n", "beta", "MAE", "KL");
  const auto users = AssignSpecs(setup->taxonomy, setup->cells,
                                 SafeRegionsS2(), EpsilonsE2(), 91);
  PLDP_CHECK(users.ok()) << users.status();
  for (const double beta : {0.01, 0.05, 0.1, 0.2, 0.5}) {
    const std::string case_name = "beta_sweep/beta_" + std::to_string(beta);
    double mae = 0.0, kl = 0.0;
    for (int run = 0; run < profile.runs; ++run) {
      PsdaOptions options;
      options.beta = beta;
      options.seed = 11000 + run;
      Stopwatch timer;
      const auto result = RunPsda(setup->taxonomy, users.value(), options);
      report.AddSample(case_name, timer.ElapsedSeconds());
      PLDP_CHECK(result.ok()) << result.status();
      mae += MaxAbsoluteError(setup->true_histogram, result->counts).value();
      kl += KlDivergence(setup->true_histogram, result->counts).value();
    }
    report.AddCaseStat(case_name, "mae", mae / profile.runs);
    report.AddCaseStat(case_name, "kl", kl / profile.runs);
    std::printf("%8.2f %12.1f %12.4f\n", beta, mae / profile.runs,
                kl / profile.runs);
  }
  std::printf("\n(beta only moves the reduced dimension m and the clustering "
              "objective; the measured error is nearly flat in it, while "
              "epsilon drives the error through c_eps ~ 2/eps)\n");
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
