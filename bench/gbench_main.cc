// Shared main for the google-benchmark micro-benches: runs the registered
// benchmarks with the normal console output, captures every iteration run,
// and emits the same standardized BENCH_<name>.json the plain benches write
// (one case per benchmark, sample = mean real seconds per iteration).
//
// The bench name comes from the PLDP_BENCH_NAME compile definition set by
// pldp_add_gbench.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "util/logging.h"

#ifndef PLDP_BENCH_NAME
#error "pldp_add_gbench must define PLDP_BENCH_NAME"
#endif

namespace {

class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(pldp::bench::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // Aggregates (mean/median/stddev rows) would double-count; the raw
      // per-repetition iterations carry the samples.
      if (run.run_type != Run::RT_Iteration) continue;
      if (run.iterations <= 0) continue;
      report_->AddSample(run.benchmark_name(),
                         run.real_accumulated_time /
                             static_cast<double>(run.iterations));
      // Benchmark counters (already finalized: rate counters are per-second
      // by now) become case stats, so derived quantities like decode
      // throughput flow into the pldp.bench/1 report for benchdiff gating.
      for (const auto& [name, counter] : run.counters) {
        report_->AddCaseStat(run.benchmark_name(), name, counter.value);
      }
    }
  }

 private:
  pldp::bench::BenchReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  pldp::bench::BenchReport report(PLDP_BENCH_NAME);
  CapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const pldp::Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  std::printf("bench report written to %s\n", report.OutputPath().c_str());
  return 0;
}
