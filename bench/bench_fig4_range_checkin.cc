// Reproduces Figure 4: relative errors of range queries on checkin.
#include "common.h"

int main() {
  return pldp::bench::RunRangeFigure("fig4_range_checkin",
                                     "Figure 4: range queries on checkin",
                                     "checkin");
}
