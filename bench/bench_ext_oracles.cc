// Extension: head-to-head of LDP frequency oracles.
//
// The paper builds PCEP on the Bassily-Smith oracle [3] and argues in its
// related-work section that RAPPOR [8] and the extremal randomized-response
// mechanisms [14] give worse utility on realistic universes. This bench
// quantifies that choice: (1) standalone oracle MAE across domain sizes and
// epsilons, (2) end-to-end PSDA with each oracle plugged into Algorithm 4.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "common.h"
#include "core/frequency_oracle.h"
#include "core/psda.h"
#include "eval/metrics.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

using namespace pldp;
using namespace pldp::bench;

std::vector<PcepUser> SkewedUsers(int n, int width, double epsilon,
                                  std::vector<double>* truth, uint64_t seed) {
  Rng rng(seed);
  truth->assign(width, 0.0);
  std::vector<PcepUser> users;
  users.reserve(n);
  for (int i = 0; i < n; ++i) {
    const auto item = static_cast<uint32_t>(
        static_cast<uint32_t>(width * std::pow(rng.NextDouble(), 3.0)) %
        width);
    users.push_back({item, epsilon});
    (*truth)[item] += 1.0;
  }
  return users;
}

}  // namespace

int main() {
  BenchReport report("ext_oracles");
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner("Extension: frequency-oracle comparison", profile);

  const PcepOracle pcep;
  const KrrOracle krr;
  const RapporOracle rappor;
  const FrequencyOracle* oracles[] = {&pcep, &krr, &rappor};

  std::printf("(1) standalone oracle MAE, n = 100k skewed users\n");
  std::printf("%8s %6s %12s %12s %12s\n", "|domain|", "eps", "PCEP", "kRR",
              "RAPPOR");
  for (const int width : {16, 256, 4096}) {
    for (const double eps : {0.5, 1.0}) {
      std::vector<double> truth;
      const auto users = SkewedUsers(100000, width, eps, &truth, 42);
      std::printf("%8d %6.2f", width, eps);
      for (const FrequencyOracle* oracle : oracles) {
        const std::string case_name = "standalone/width_" +
                                      std::to_string(width) + "/eps_" +
                                      std::to_string(eps) + "/" +
                                      oracle->Name();
        double mae = 0.0;
        for (int run = 0; run < profile.runs; ++run) {
          Stopwatch timer;
          const auto counts =
              oracle->EstimateCounts(users, width, 0.1, 100 + run);
          report.AddSample(case_name, timer.ElapsedSeconds());
          PLDP_CHECK(counts.ok()) << counts.status();
          const auto err = MaxAbsoluteError(truth, counts.value());
          mae += err.value();
        }
        report.AddCaseStat(case_name, "mae", mae / profile.runs);
        std::printf(" %12.1f", mae / profile.runs);
      }
      std::printf("\n");
    }
  }

  std::printf("\n(2) PSDA end-to-end with each oracle (landmark, S2/E2)\n");
  const auto setup =
      PrepareExperiment("landmark", DatasetScale(profile, "landmark"), 2016);
  PLDP_CHECK(setup.ok()) << setup.status();
  const auto users = AssignSpecs(setup->taxonomy, setup->cells,
                                 SafeRegionsS2(), EpsilonsE2(), 77);
  PLDP_CHECK(users.ok()) << users.status();
  std::printf("%10s %12s %12s\n", "oracle", "KL", "MAE");
  for (const FrequencyOracle* oracle : oracles) {
    const std::string case_name = "psda_end_to_end/" + oracle->Name();
    double kl = 0.0, mae = 0.0;
    for (int run = 0; run < profile.runs; ++run) {
      PsdaOptions options;
      options.seed = 9000 + run;
      Stopwatch timer;
      const auto result =
          RunPsdaWithOracle(setup->taxonomy, users.value(), options, *oracle);
      report.AddSample(case_name, timer.ElapsedSeconds());
      PLDP_CHECK(result.ok()) << result.status();
      kl += KlDivergence(setup->true_histogram, result->counts).value();
      mae += MaxAbsoluteError(setup->true_histogram, result->counts).value();
    }
    report.AddCaseStat(case_name, "kl", kl / profile.runs);
    report.AddCaseStat(case_name, "mae", mae / profile.runs);
    std::printf("%10s %12.4f %12.1f\n", oracle->Name().c_str(),
                kl / profile.runs, mae / profile.runs);
  }
  std::printf("\n(PCEP should dominate as the domain grows - the paper's "
              "rationale for building on [3].)\n");

  // (3) The backend matrix: accuracy x communication x decode CPU for the
  // four pluggable backends, published as its own BENCH_oracle_matrix.json
  // so pldp_benchdiff gates the accuracy column (mae, lower-is-better) and
  // the cost columns (bytes_per_report / decode_cpu_ms, lower-is-better)
  // exactly like the perf stats. crossover_m is informational: the smallest
  // measured |domain| where HR's one-FWHT decode undercuts PCEP's decode.
  std::printf("\n(3) backend matrix, n = 10k skewed users, eps = 1\n");
  BenchReport matrix("oracle_matrix");
  matrix.AddParam("users", 10000);
  matrix.AddParam("epsilon", 1.0);
  const OlhOracle olh;
  const OueOracle oue;
  const HadamardOracle hr;
  const FrequencyOracle* matrix_oracles[] = {&pcep, &olh, &oue, &hr};
  std::map<int, std::map<std::string, double>> decode_seconds_by_width;
  std::printf("%8s %8s %12s %14s %14s %14s\n", "|domain|", "oracle", "mae",
              "bytes/report", "decode_ms", "encode_ms");
  for (const int width : {256, 4096, 65536}) {
    std::vector<double> truth;
    const auto matrix_users = SkewedUsers(10000, width, 1.0, &truth, 4242);
    for (const FrequencyOracle* oracle : matrix_oracles) {
      const std::string case_name =
          "width_" + std::to_string(width) + "/" + oracle->Name();
      double mae = 0.0, decode = 0.0, encode = 0.0, bytes = 0.0;
      for (int run = 0; run < profile.runs; ++run) {
        OracleRunStats stats;
        Stopwatch timer;
        const auto counts =
            oracle->EstimateCounts(matrix_users, width, 0.1, 500 + run, &stats);
        matrix.AddSample(case_name, timer.ElapsedSeconds());
        PLDP_CHECK(counts.ok()) << counts.status();
        mae += MaxAbsoluteError(truth, counts.value()).value();
        decode += stats.decode_seconds;
        encode += stats.encode_seconds;
        bytes = stats.bytes_per_report;
      }
      mae /= profile.runs;
      decode /= profile.runs;
      encode /= profile.runs;
      matrix.AddCaseStat(case_name, "mae", mae);
      matrix.AddCaseStat(case_name, "bytes_per_report", bytes);
      matrix.AddCaseStat(case_name, "decode_cpu_ms", decode * 1e3);
      matrix.AddCaseStat(case_name, "encode_cpu_ms", encode * 1e3);
      decode_seconds_by_width[width][oracle->Name()] = decode;
      std::printf("%8d %8s %12.1f %14.3f %14.3f %14.3f\n", width,
                  oracle->Name().c_str(), mae, bytes, decode * 1e3,
                  encode * 1e3);
    }
  }
  // The crossover case carries HR's decode time at the largest domain as its
  // sample so the case is well-formed; crossover_m = 0 means HR never won a
  // measured width.
  double crossover_m = 0.0;
  for (const auto& [width, per_oracle] : decode_seconds_by_width) {
    if (per_oracle.at("HR") < per_oracle.at("PCEP")) {
      crossover_m = static_cast<double>(width);
      break;
    }
  }
  matrix.AddSample("hr_vs_pcep", decode_seconds_by_width[65536]["HR"]);
  matrix.AddCaseStat("hr_vs_pcep", "crossover_m", crossover_m);
  std::printf("\nHR decode undercuts PCEP decode from |domain| = %.0f on "
              "(0 = never measured).\n", crossover_m);
  const Status matrix_written = matrix.Write();
  PLDP_CHECK(matrix_written.ok()) << matrix_written.ToString();

  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
