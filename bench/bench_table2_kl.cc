// Reproduces Table II: KL divergences of PSDA / kdTree / Cloak / SR over the
// four benchmark datasets under the four privacy-specification settings
// (S1,E1), (S1,E2), (S2,E1), (S2,E2).
//
// Expected shape (paper): PSDA smallest everywhere; kdTree second; Cloak
// insensitive to E; SR (plain LDP) worst on large universes; storage noisier
// than the rest because of its tiny cohort.

#include <cstdio>

#include "common.h"
#include "eval/metrics.h"
#include "util/logging.h"

int main() {
  using namespace pldp;
  using namespace pldp::bench;

  BenchReport report("table2_kl");
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner("Table II: KL divergence", profile);

  const auto settings = AllSpecSettings();
  for (size_t s = 0; s < settings.size(); ++s) {
    std::printf("(%c) KL divergences under %s\n",
                static_cast<char>('a' + s), settings[s].Name().c_str());
    std::printf("%-10s %10s %10s %10s %10s\n", "Dataset", "PSDA", "kdTree",
                "Cloak", "SR");
    for (const std::string& name : BenchmarkDatasetNames()) {
      const auto setup =
          PrepareExperiment(name, DatasetScale(profile, name), 2016);
      PLDP_CHECK(setup.ok()) << setup.status();
      const auto users =
          AssignSpecs(setup->taxonomy, setup->cells,
                      settings[s].safe_regions, settings[s].epsilons,
                      /*seed=*/71 + s);
      PLDP_CHECK(users.ok()) << users.status();

      std::printf("%-10s", name.c_str());
      for (const Scheme scheme : AllSchemes()) {
        const double kl = MeanOverRuns(
            scheme, setup->taxonomy, users.value(), /*beta=*/0.1,
            profile.runs, /*seed_base=*/900 + 17 * s,
            [&](const std::vector<double>& counts) {
              return KlDivergence(setup->true_histogram, counts).value();
            },
            &report,
            settings[s].Name() + "/" + name + "/" + SchemeName(scheme));
        std::printf(" %10.4f", kl);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
