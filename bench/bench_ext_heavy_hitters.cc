// Extension: succinct heavy-hitter discovery (the Bassily-Smith headline
// capability PCEP descends from). Measures recall of planted hot items and
// wall-clock as the domain grows far past anything a dense decode could
// enumerate, plus an end-to-end "busiest cells" run on the checkin analog.

#include <algorithm>
#include <cstdio>
#include <set>

#include "common.h"
#include "core/heavy_hitters.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace {

using namespace pldp;
using namespace pldp::bench;

std::vector<PcepUser> PlantedCohort(size_t n, uint64_t width,
                                    const std::vector<uint64_t>& heavy,
                                    double heavy_mass, uint64_t seed) {
  Rng rng(seed);
  std::vector<PcepUser> users;
  users.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PcepUser user;
    user.location_index =
        rng.Bernoulli(heavy_mass)
            ? static_cast<uint32_t>(heavy[rng.NextUint64(heavy.size())])
            : static_cast<uint32_t>(rng.NextUint64(width));
    user.epsilon = 1.0;
    users.push_back(user);
  }
  return users;
}

}  // namespace

int main() {
  BenchReport report("ext_heavy_hitters");
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner("Extension: succinct heavy hitters", profile);

  std::printf("(1) recall of 5 planted items (50%% of the mass), n = 100k\n");
  std::printf("%12s %10s %10s %10s\n", "|domain|", "recall", "levels",
              "wall s");
  for (const uint32_t bits : {12u, 16u, 20u, 24u}) {
    const uint64_t width = uint64_t{1} << bits;
    std::vector<uint64_t> heavy;
    Rng pick(99);
    for (int i = 0; i < 5; ++i) heavy.push_back(pick.NextUint64(width));
    double recall = 0.0, seconds = 0.0;
    for (int run = 0; run < profile.runs; ++run) {
      const auto users =
          PlantedCohort(100000, width, heavy, 0.5, 1234 + run);
      HeavyHittersOptions options;
      options.max_results = 8;
      options.seed = 555 + run;
      Stopwatch timer;
      const auto hitters = FindHeavyHitters(users, width, options);
      const double elapsed = timer.ElapsedSeconds();
      report.AddSample("recall/width_" + std::to_string(width), elapsed);
      seconds += elapsed;
      PLDP_CHECK(hitters.ok()) << hitters.status();
      std::set<uint64_t> found;
      for (const auto& hitter : hitters.value()) found.insert(hitter.item);
      size_t hit = 0;
      for (const uint64_t item : heavy) hit += found.count(item);
      recall += static_cast<double>(hit) / heavy.size();
    }
    report.AddCaseStat("recall/width_" + std::to_string(width), "recall",
                       recall / profile.runs);
    std::printf("%12lu %9.0f%% %10u %10.3f\n",
                static_cast<unsigned long>(width),
                100.0 * recall / profile.runs, (bits + 3) / 4,
                seconds / profile.runs);
  }

  std::printf("\n(2) busiest cells of the checkin analog (no enumeration)\n");
  const auto setup =
      PrepareExperiment("checkin", DatasetScale(profile, "checkin"), 2016);
  PLDP_CHECK(setup.ok()) << setup.status();
  std::vector<PcepUser> users;
  users.reserve(setup->cells.size());
  for (const CellId cell : setup->cells) users.push_back({cell, 1.0});

  HeavyHittersOptions options;
  options.max_results = 5;
  Stopwatch checkin_timer;
  const auto hitters =
      FindHeavyHitters(users, setup->taxonomy.grid().num_cells(), options);
  report.AddSample("busiest_cells_checkin", checkin_timer.ElapsedSeconds());
  PLDP_CHECK(hitters.ok()) << hitters.status();

  std::printf("%12s %12s %12s\n", "cell", "estimated", "true");
  for (const auto& hitter : hitters.value()) {
    std::printf("%12lu %12.1f %12.0f\n",
                static_cast<unsigned long>(hitter.item),
                hitter.estimated_count,
                setup->true_histogram[hitter.item]);
  }
  // How many of the discovered cells are among the true top 10?
  std::vector<CellId> order(setup->true_histogram.size());
  for (CellId c = 0; c < order.size(); ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    return setup->true_histogram[a] > setup->true_histogram[b];
  });
  const std::set<uint64_t> top10(order.begin(), order.begin() + 10);
  size_t in_top10 = 0;
  for (const auto& hitter : hitters.value()) {
    in_top10 += top10.count(hitter.item);
  }
  std::printf("%zu of %zu discovered cells are in the true top-10\n",
              in_top10, hitters->size());
  report.AddCaseStat("busiest_cells_checkin", "in_true_top10",
                     static_cast<double>(in_top10));
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
