#include "common.h"

#include <cstdio>
#include <functional>
#include <utility>

#include "eval/metrics.h"
#include "eval/range_query.h"
#include "util/logging.h"

namespace pldp {
namespace bench {

std::vector<SpecSetting> AllSpecSettings() {
  return {
      {SafeRegionsS1(), EpsilonsE1()},
      {SafeRegionsS1(), EpsilonsE2()},
      {SafeRegionsS2(), EpsilonsE1()},
      {SafeRegionsS2(), EpsilonsE2()},
  };
}

void PrintProfileBanner(const char* bench_name, const BenchProfile& profile) {
  std::printf("=== %s ===\n", bench_name);
  std::printf(
      "profile: %s (scale %.3g, %d runs; set PLDP_BENCH_PROFILE=paper for "
      "full-size)\n\n",
      profile.name.c_str(), profile.scale, profile.runs);
}

double MeanOverRuns(Scheme scheme, const SpatialTaxonomy& taxonomy,
                    const std::vector<UserRecord>& users, double beta,
                    int runs, uint64_t seed_base,
                    const std::function<double(const std::vector<double>&)>&
                        metric) {
  PLDP_CHECK(runs > 0);
  double total = 0.0;
  for (int run = 0; run < runs; ++run) {
    const auto counts =
        RunScheme(scheme, taxonomy, users, beta, seed_base + 1000 * run);
    PLDP_CHECK(counts.ok()) << SchemeName(scheme) << ": "
                            << counts.status().ToString();
    total += metric(counts.value());
  }
  return total / runs;
}

int RunRangeFigure(const char* figure_name, const std::string& dataset_name) {
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner(figure_name, profile);

  const auto setup =
      PrepareExperiment(dataset_name, DatasetScale(profile, dataset_name),
                        2016);
  PLDP_CHECK(setup.ok()) << setup.status();
  const UniformGrid& grid = setup->taxonomy.grid();
  const double sanity =
      setup->dataset.sanity_fraction * setup->dataset.num_users();

  // The six query sizes: q1 from the dataset, each 1.5x larger per side.
  // Queries and their exact answers are computed once (the point scan is the
  // expensive part); every scheme/run reuses them.
  struct QuerySet {
    std::vector<BoundingBox> queries;
    std::vector<double> truths;
  };
  std::vector<QuerySet> query_sets;
  {
    double w = setup->dataset.q1_width, h = setup->dataset.q1_height;
    for (int qi = 0; qi < 6; ++qi, w *= 1.5, h *= 1.5) {
      QuerySet set;
      const auto queries =
          GenerateRangeQueries(setup->dataset.domain, w, h,
                               profile.queries_per_size, /*seed=*/555 + qi);
      PLDP_CHECK(queries.ok()) << queries.status();
      set.queries = queries.value();
      set.truths.reserve(set.queries.size());
      for (const BoundingBox& query : set.queries) {
        set.truths.push_back(AnswerFromPoints(setup->dataset.points, query));
      }
      query_sets.push_back(std::move(set));
    }
  }
  const size_t num_sizes = query_sets.size();

  for (const SpecSetting& setting : AllSpecSettings()) {
    std::printf("%s on %s\n", setting.Name().c_str(), dataset_name.c_str());
    const auto users =
        AssignSpecs(setup->taxonomy, setup->cells, setting.safe_regions,
                    setting.epsilons, /*seed=*/37);
    PLDP_CHECK(users.ok()) << users.status();

    std::printf("%-8s", "scheme");
    for (int qi = 1; qi <= 6; ++qi) std::printf("       q%d", qi);
    std::printf("\n");

    for (const Scheme scheme : AllSchemes()) {
      std::vector<double> errors(num_sizes, 0.0);
      for (int run = 0; run < profile.runs; ++run) {
        const auto counts = RunScheme(scheme, setup->taxonomy, users.value(),
                                      /*beta=*/0.1, 4000 + 1000 * run);
        PLDP_CHECK(counts.ok()) << counts.status();
        for (size_t qi = 0; qi < num_sizes; ++qi) {
          const QuerySet& set = query_sets[qi];
          double total = 0.0;
          for (size_t q = 0; q < set.queries.size(); ++q) {
            const double estimate =
                AnswerFromCells(grid, counts.value(), set.queries[q]);
            total += RelativeError(set.truths[q], estimate, sanity);
          }
          errors[qi] += total / set.queries.size();
        }
      }
      std::printf("%-8s", SchemeName(scheme));
      for (const double total : errors) {
        std::printf(" %8.3f", total / profile.runs);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace bench
}  // namespace pldp
