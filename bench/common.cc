#include "common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <functional>
#include <utility>

#include "eval/metrics.h"
#include "eval/range_query.h"
#include "obs/chrome_trace.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace pldp {
namespace bench {

double Median(std::vector<double> samples) { return Percentile(samples, 50.0); }

double Percentile(std::vector<double> samples, double p) {
  PLDP_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= samples.size()) index = samples.size() - 1;
  return samples[index];
}

BenchReport::BenchReport(const std::string& bench_name)
    : bench_name_(bench_name) {
  manifest_.tool = "bench_" + bench_name;
  manifest_.command = "bench";
  const BenchProfile profile = GetBenchProfile();
  manifest_.AddParam("profile", profile.name);
  manifest_.AddParam("profile_scale", profile.scale);
  manifest_.AddParam("profile_runs", static_cast<int64_t>(profile.runs));
  obs::EnableCollection();
}

void BenchReport::AddParam(const std::string& key, const std::string& value) {
  manifest_.AddParam(key, value);
}
void BenchReport::AddParam(const std::string& key, double value) {
  manifest_.AddParam(key, value);
}
void BenchReport::AddParam(const std::string& key, uint64_t value) {
  manifest_.AddParam(key, value);
}
void BenchReport::AddParam(const std::string& key, int value) {
  manifest_.AddParam(key, value);
}

BenchReport::Case* BenchReport::GetCase(const std::string& case_name) {
  for (Case& existing : cases_) {
    if (existing.name == case_name) return &existing;
  }
  cases_.push_back(Case{case_name, {}, {}});
  return &cases_.back();
}

void BenchReport::AddSample(const std::string& case_name, double seconds) {
  GetCase(case_name)->samples.push_back(seconds);
}

void BenchReport::AddCase(const std::string& case_name,
                          const std::vector<double>& seconds) {
  Case* entry = GetCase(case_name);
  entry->samples.insert(entry->samples.end(), seconds.begin(), seconds.end());
}

void BenchReport::AddCaseStat(const std::string& case_name,
                              const std::string& key, double value) {
  Case* c = GetCase(case_name);
  // Last write wins: repeated google-benchmark repetitions re-report the same
  // counters, and duplicate keys would make the JSON ambiguous for benchdiff.
  for (auto& [existing_key, existing_value] : c->stats) {
    if (existing_key == key) {
      existing_value = value;
      return;
    }
  }
  c->stats.emplace_back(key, value);
}

std::string BenchReport::OutputPath() const {
  std::string dir = ".";
  if (const char* env = std::getenv("PLDP_BENCH_OUT_DIR")) {
    if (env[0] != '\0') dir = env;
  }
  return dir + "/BENCH_" + bench_name_ + ".json";
}

Status BenchReport::Write() const {
  const std::string path = OutputPath();
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  const std::vector<obs::SpanRecord> spans =
      obs::TraceCollector::Global().Snapshot();

  obs::JsonWriter writer(&out);
  writer.BeginObject();
  writer.Field("schema", "pldp.bench/1");
  writer.Field("bench", bench_name_);
  writer.Field("generated_unix_s", static_cast<int64_t>(std::time(nullptr)));
  writer.Key("manifest");
  obs::WriteManifestJson(&writer, manifest_);
  writer.Key("cases");
  writer.BeginArray();
  for (const Case& entry : cases_) {
    writer.BeginObject();
    writer.Field("name", entry.name);
    writer.Field("repetitions", static_cast<uint64_t>(entry.samples.size()));
    if (!entry.samples.empty()) {
      writer.Field("median_s", Median(entry.samples));
      writer.Field("p95_s", Percentile(entry.samples, 95.0));
      double total = 0.0;
      double min = entry.samples.front(), max = entry.samples.front();
      for (const double s : entry.samples) {
        total += s;
        min = std::min(min, s);
        max = std::max(max, s);
      }
      writer.Field("mean_s", total / static_cast<double>(entry.samples.size()));
      writer.Field("min_s", min);
      writer.Field("max_s", max);
    }
    if (!entry.stats.empty()) {
      writer.Key("stats");
      writer.BeginObject();
      for (const auto& [key, value] : entry.stats) writer.Field(key, value);
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("metrics");
  obs::WriteMetricsJson(&writer, obs::MetricsRegistry::Global().Snapshot());
  writer.Key("span_aggregates");
  obs::WriteSpanAggregatesJson(&writer, spans);
  writer.EndObject();
  out << "\n";
  out.flush();
  if (!out) {
    return Status::Internal("failed writing bench report to " + path);
  }

  // PLDP_BENCH_EXPORTS (comma/space list of "prom", "trace") writes the
  // standard-tool companions next to the JSON: BENCH_<name>.prom and
  // BENCH_<name>.trace.json.
  if (const char* exports = std::getenv("PLDP_BENCH_EXPORTS")) {
    const std::string requested = exports;
    const std::string base = path.substr(0, path.size() - 5);  // drop .json
    if (requested.find("prom") != std::string::npos) {
      PLDP_RETURN_IF_ERROR(obs::WritePrometheusTextFile(
          base + ".prom", obs::MetricsRegistry::Global().Snapshot()));
    }
    if (requested.find("trace") != std::string::npos) {
      PLDP_RETURN_IF_ERROR(obs::WriteChromeTraceFile(
          base + ".trace.json", spans, obs::TraceCollector::Global().dropped(),
          obs::MetricsRegistry::Global().Snapshot()));
    }
  }
  return Status::OK();
}

std::vector<SpecSetting> AllSpecSettings() {
  return {
      {SafeRegionsS1(), EpsilonsE1()},
      {SafeRegionsS1(), EpsilonsE2()},
      {SafeRegionsS2(), EpsilonsE1()},
      {SafeRegionsS2(), EpsilonsE2()},
  };
}

void PrintProfileBanner(const char* bench_name, const BenchProfile& profile) {
  std::printf("=== %s ===\n", bench_name);
  std::printf(
      "profile: %s (scale %.3g, %d runs; set PLDP_BENCH_PROFILE=paper for "
      "full-size)\n\n",
      profile.name.c_str(), profile.scale, profile.runs);
}

double MeanOverRuns(Scheme scheme, const SpatialTaxonomy& taxonomy,
                    const std::vector<UserRecord>& users, double beta,
                    int runs, uint64_t seed_base,
                    const std::function<double(const std::vector<double>&)>&
                        metric,
                    BenchReport* report, const std::string& case_name) {
  PLDP_CHECK(runs > 0);
  double total = 0.0;
  for (int run = 0; run < runs; ++run) {
    Stopwatch timer;
    const auto counts =
        RunScheme(scheme, taxonomy, users, beta, seed_base + 1000 * run);
    if (report != nullptr) {
      report->AddSample(case_name, timer.ElapsedSeconds());
    }
    PLDP_CHECK(counts.ok()) << SchemeName(scheme) << ": "
                            << counts.status().ToString();
    total += metric(counts.value());
  }
  const double mean = total / runs;
  if (report != nullptr) report->AddCaseStat(case_name, "metric", mean);
  return mean;
}

int RunRangeFigure(const char* bench_name, const char* figure_title,
                   const std::string& dataset_name) {
  BenchReport report(bench_name);
  report.AddParam("dataset", dataset_name);
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner(figure_title, profile);

  const auto setup =
      PrepareExperiment(dataset_name, DatasetScale(profile, dataset_name),
                        2016);
  PLDP_CHECK(setup.ok()) << setup.status();
  const UniformGrid& grid = setup->taxonomy.grid();
  const double sanity =
      setup->dataset.sanity_fraction * setup->dataset.num_users();

  // The six query sizes: q1 from the dataset, each 1.5x larger per side.
  // Queries and their exact answers are computed once (the point scan is the
  // expensive part); every scheme/run reuses them.
  struct QuerySet {
    std::vector<BoundingBox> queries;
    std::vector<double> truths;
  };
  std::vector<QuerySet> query_sets;
  {
    double w = setup->dataset.q1_width, h = setup->dataset.q1_height;
    for (int qi = 0; qi < 6; ++qi, w *= 1.5, h *= 1.5) {
      QuerySet set;
      const auto queries =
          GenerateRangeQueries(setup->dataset.domain, w, h,
                               profile.queries_per_size, /*seed=*/555 + qi);
      PLDP_CHECK(queries.ok()) << queries.status();
      set.queries = queries.value();
      set.truths.reserve(set.queries.size());
      for (const BoundingBox& query : set.queries) {
        set.truths.push_back(AnswerFromPoints(setup->dataset.points, query));
      }
      query_sets.push_back(std::move(set));
    }
  }
  const size_t num_sizes = query_sets.size();

  for (const SpecSetting& setting : AllSpecSettings()) {
    std::printf("%s on %s\n", setting.Name().c_str(), dataset_name.c_str());
    const auto users =
        AssignSpecs(setup->taxonomy, setup->cells, setting.safe_regions,
                    setting.epsilons, /*seed=*/37);
    PLDP_CHECK(users.ok()) << users.status();

    std::printf("%-8s", "scheme");
    for (int qi = 1; qi <= 6; ++qi) std::printf("       q%d", qi);
    std::printf("\n");

    for (const Scheme scheme : AllSchemes()) {
      const std::string case_name =
          setting.Name() + "/" + SchemeName(scheme);
      std::vector<double> errors(num_sizes, 0.0);
      for (int run = 0; run < profile.runs; ++run) {
        Stopwatch timer;
        const auto counts = RunScheme(scheme, setup->taxonomy, users.value(),
                                      /*beta=*/0.1, 4000 + 1000 * run);
        report.AddSample(case_name, timer.ElapsedSeconds());
        PLDP_CHECK(counts.ok()) << counts.status();
        for (size_t qi = 0; qi < num_sizes; ++qi) {
          const QuerySet& set = query_sets[qi];
          double total = 0.0;
          for (size_t q = 0; q < set.queries.size(); ++q) {
            const double estimate =
                AnswerFromCells(grid, counts.value(), set.queries[q]);
            total += RelativeError(set.truths[q], estimate, sanity);
          }
          errors[qi] += total / set.queries.size();
        }
      }
      std::printf("%-8s", SchemeName(scheme));
      for (size_t qi = 0; qi < num_sizes; ++qi) {
        const double mean_error = errors[qi] / profile.runs;
        report.AddCaseStat(case_name, "err_q" + std::to_string(qi + 1),
                           mean_error);
        std::printf(" %8.3f", mean_error);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}

}  // namespace bench
}  // namespace pldp
