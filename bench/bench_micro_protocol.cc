// Communication-cost measurements for the message-level protocol, matching
// the Section IV-A analysis: downlink O(|tau|) bits per user (one packed JL
// row), uplink O(1) (one spec upload + a 1-byte report).

#include <cstdio>
#include <vector>

#include "common.h"
#include "core/psda.h"
#include "geo/taxonomy.h"
#include "protocol/client.h"
#include "protocol/server.h"
#include "util/random.h"
#include "util/logging.h"
#include "util/stopwatch.h"

int main() {
  using namespace pldp;
  using namespace pldp::bench;

  bench::BenchReport report("micro_protocol");
  const BenchProfile profile = GetBenchProfile();
  const int repetitions = profile.runs;
  report.AddParam("clients", static_cast<uint64_t>(2000));
  report.AddParam("repetitions", repetitions);

  std::printf("=== Protocol communication cost vs |tau| ===\n\n");
  std::printf("%10s %14s %14s %14s %12s\n", "|universe|", "down B/user",
              "up B/user", "row payload B", "wall s");

  for (const uint32_t side : {4u, 8u, 16u, 32u, 64u}) {
    const UniformGrid grid =
        UniformGrid::Create(BoundingBox{0, 0, static_cast<double>(side),
                                        static_cast<double>(side)},
                            1, 1)
            .value();
    const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();
    const std::string case_name =
        "universe_" + std::to_string(grid.num_cells());

    // Everyone declares the universe: every row spans all |L| cells, the
    // worst-case downlink.
    const size_t n = 2000;
    ProtocolStats stats;
    double seconds = 0.0;
    for (int rep = 0; rep < repetitions; ++rep) {
      // Fresh clients per repetition so every Collect does identical work.
      Rng rng(101);
      std::vector<DeviceClient> clients;
      clients.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const auto cell =
            static_cast<CellId>(rng.NextUint64(grid.num_cells()));
        clients.emplace_back(&taxonomy, cell,
                             PrivacySpec{taxonomy.root(), 1.0},
                             SplitMix64(7 ^ (i + 1)));
      }

      AggregationServer server(&taxonomy, PsdaOptions());
      Stopwatch timer;
      const auto result = server.Collect(&clients, &stats);
      const double elapsed = timer.ElapsedSeconds();
      PLDP_CHECK(result.ok()) << result.status();
      report.AddSample(case_name, elapsed);
      seconds += elapsed;
    }
    seconds /= repetitions;

    const double row_payload = (grid.num_cells() + 63) / 64 * 8.0;
    const double down = static_cast<double>(stats.bytes_to_clients) / n;
    const double up = static_cast<double>(stats.bytes_to_server) / n;
    report.AddCaseStat(case_name, "down_bytes_per_user", down);
    report.AddCaseStat(case_name, "up_bytes_per_user", up);
    report.AddCaseStat(case_name, "row_payload_bytes", row_payload);
    std::printf("%10u %14.1f %14.1f %14.0f %12.3f\n", grid.num_cells(), down,
                up, row_payload, seconds);
  }
  std::printf("\ndownlink grows linearly with |tau| (packed row), uplink is "
              "constant: the thin-client design of Section IV-A.\n");
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
