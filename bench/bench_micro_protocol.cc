// Communication-cost measurements for the message-level protocol, matching
// the Section IV-A analysis: downlink O(|tau|) bits per user (one packed JL
// row), uplink O(1) (one spec upload + a 1-byte report).

#include <cstdio>
#include <vector>

#include "core/psda.h"
#include "geo/taxonomy.h"
#include "protocol/client.h"
#include "protocol/server.h"
#include "util/random.h"
#include "util/logging.h"
#include "util/stopwatch.h"

int main() {
  using namespace pldp;

  std::printf("=== Protocol communication cost vs |tau| ===\n\n");
  std::printf("%10s %14s %14s %14s %12s\n", "|universe|", "down B/user",
              "up B/user", "row payload B", "wall s");

  for (const uint32_t side : {4u, 8u, 16u, 32u, 64u}) {
    const UniformGrid grid =
        UniformGrid::Create(BoundingBox{0, 0, static_cast<double>(side),
                                        static_cast<double>(side)},
                            1, 1)
            .value();
    const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();

    // Everyone declares the universe: every row spans all |L| cells, the
    // worst-case downlink.
    const size_t n = 2000;
    Rng rng(101);
    std::vector<DeviceClient> clients;
    clients.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const auto cell = static_cast<CellId>(rng.NextUint64(grid.num_cells()));
      clients.emplace_back(&taxonomy, cell,
                           PrivacySpec{taxonomy.root(), 1.0},
                           SplitMix64(7 ^ (i + 1)));
    }

    AggregationServer server(&taxonomy, PsdaOptions());
    ProtocolStats stats;
    Stopwatch timer;
    const auto result = server.Collect(&clients, &stats);
    PLDP_CHECK(result.ok()) << result.status();
    const double seconds = timer.ElapsedSeconds();

    const double row_payload = (grid.num_cells() + 63) / 64 * 8.0;
    std::printf("%10u %14.1f %14.1f %14.0f %12.3f\n", grid.num_cells(),
                static_cast<double>(stats.bytes_to_clients) / n,
                static_cast<double>(stats.bytes_to_server) / n, row_payload,
                seconds);
  }
  std::printf("\ndownlink grows linearly with |tau| (packed row), uplink is "
              "constant: the thin-client design of Section IV-A.\n");
  return 0;
}
