// Reproduces Figure 5: relative errors of range queries on landmark.
#include "common.h"

int main() {
  return pldp::bench::RunRangeFigure("fig5_range_landmark",
                                     "Figure 5: range queries on landmark",
                                     "landmark");
}
