// Reproduces Figure 7: server-side runtime of PSDA (a) versus the number of
// users and (b) versus the size of the location universe.
//
// The paper extracts 25/50/75/100% of users and locations from each dataset;
// here (a) subsamples users and (b) crops the spatial domain to the matching
// fraction of cells (keeping every user by clamping, so only |L| varies).
// Absolute seconds differ from the paper's 2013-era i7; the linear trend is
// the reproduced claim.

#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/psda.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace {

using namespace pldp;
using namespace pldp::bench;

double TimePsda(const SpatialTaxonomy& taxonomy,
                const std::vector<UserRecord>& users, int runs,
                BenchReport* report, const std::string& case_name) {
  double total = 0.0;
  for (int run = 0; run < runs; ++run) {
    PsdaOptions options;
    options.seed = 31337 + run;
    const auto result = RunPsda(taxonomy, users, options);
    PLDP_CHECK(result.ok()) << result.status();
    report->AddSample(case_name, result->server_seconds);
    total += result->server_seconds;
  }
  return total / runs;
}

}  // namespace

int main() {
  BenchReport report("fig7_scalability");
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner("Figure 7: PSDA server runtime", profile);
  const double fractions[] = {0.25, 0.50, 0.75, 1.00};

  std::printf("(a) runtime (seconds) vs. percentage of users\n");
  std::printf("%-10s %8s %8s %8s %8s\n", "Dataset", "25%", "50%", "75%",
              "100%");
  for (const std::string& name : BenchmarkDatasetNames()) {
    const auto setup =
        PrepareExperiment(name, DatasetScale(profile, name), 2016);
    PLDP_CHECK(setup.ok()) << setup.status();
    const auto all_users =
        AssignSpecs(setup->taxonomy, setup->cells, SafeRegionsS2(),
                    EpsilonsE2(), 41);
    PLDP_CHECK(all_users.ok()) << all_users.status();

    std::printf("%-10s", name.c_str());
    for (const double fraction : fractions) {
      const size_t n = std::max<size_t>(
          1, static_cast<size_t>(all_users->size() * fraction));
      const std::vector<UserRecord> subset(all_users->begin(),
                                           all_users->begin() + n);
      const std::string case_name =
          "users/" + name + "/" +
          std::to_string(static_cast<int>(fraction * 100));
      std::printf(" %8.3f",
                  TimePsda(setup->taxonomy, subset, profile.runs, &report,
                           case_name));
    }
    std::printf("\n");
  }

  std::printf("\n(b) runtime (seconds) vs. percentage of locations\n");
  std::printf("%-10s %8s %8s %8s %8s\n", "Dataset", "25%", "50%", "75%",
              "100%");
  for (const std::string& name : BenchmarkDatasetNames()) {
    std::printf("%-10s", name.c_str());
    for (const double fraction : fractions) {
      // Crop the domain so the universe holds ~fraction of the cells; users
      // are clamped into the cropped domain, keeping n constant.
      auto dataset =
          GenerateByName(name, DatasetScale(profile, name), 2016).value();
      const double side = std::sqrt(fraction);
      dataset.domain.max_lon =
          dataset.domain.min_lon + dataset.domain.Width() * side;
      dataset.domain.max_lat =
          dataset.domain.min_lat + dataset.domain.Height() * side;
      const auto grid = dataset.MakeGrid();
      PLDP_CHECK(grid.ok()) << grid.status();
      const auto taxonomy = SpatialTaxonomy::Build(grid.value(), 4);
      PLDP_CHECK(taxonomy.ok()) << taxonomy.status();
      const auto users = AssignSpecs(taxonomy.value(),
                                     dataset.ToCells(grid.value()),
                                     SafeRegionsS2(), EpsilonsE2(), 41);
      PLDP_CHECK(users.ok()) << users.status();
      const std::string case_name =
          "cells/" + name + "/" +
          std::to_string(static_cast<int>(fraction * 100));
      std::printf(" %8.3f",
                  TimePsda(taxonomy.value(), users.value(), profile.runs,
                           &report, case_name));
    }
    std::printf("\n");
  }
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
