// Reproduces Figure 3: relative errors of range queries on road.
#include "common.h"

int main() {
  return pldp::bench::RunRangeFigure("fig3_range_road",
                                     "Figure 3: range queries on road",
                                     "road");
}
