#ifndef PLDP_BENCH_COMMON_H_
#define PLDP_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/spec_assignment.h"
#include "data/synthetic.h"
#include "eval/experiment.h"

namespace pldp {
namespace bench {

/// The paper's four privacy-specification settings, in Table II order:
/// (S1,E1), (S1,E2), (S2,E1), (S2,E2).
struct SpecSetting {
  SafeRegionDistribution safe_regions;
  EpsilonDistribution epsilons;

  std::string Name() const {
    return "(" + safe_regions.name + "," + epsilons.name + ")";
  }
};

std::vector<SpecSetting> AllSpecSettings();

/// Prints the profile banner every bench starts with.
void PrintProfileBanner(const char* bench_name, const BenchProfile& profile);

/// Runs `scheme` `runs` times with distinct seeds and returns the mean of
/// `metric(counts)` over the runs. Aborts the process on setup errors (bench
/// binaries are leaf programs).
double MeanOverRuns(Scheme scheme, const SpatialTaxonomy& taxonomy,
                    const std::vector<UserRecord>& users, double beta,
                    int runs, uint64_t seed_base,
                    const std::function<double(const std::vector<double>&)>&
                        metric);

/// Shared driver for Figures 3-6: mean relative error of range queries of 6
/// growing sizes (q1 per dataset, x1.5 linear per step, `queries_per_size`
/// random rectangles each) for every scheme under every spec setting.
int RunRangeFigure(const char* figure_name, const std::string& dataset_name);

}  // namespace bench
}  // namespace pldp

#endif  // PLDP_BENCH_COMMON_H_
