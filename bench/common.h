#ifndef PLDP_BENCH_COMMON_H_
#define PLDP_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "data/spec_assignment.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "obs/manifest.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace pldp {
namespace bench {

/// Sample statistics over per-repetition wall times. `Percentile` uses
/// nearest-rank on the sorted samples; both abort on an empty vector.
double Median(std::vector<double> samples);
double Percentile(std::vector<double> samples, double p);

/// Standardized machine-readable output every bench binary emits next to its
/// console tables: `BENCH_<name>.json` (schema "pldp.bench/1", see
/// docs/observability.md) in $PLDP_BENCH_OUT_DIR (default: the working
/// directory). One case per measured configuration, with median/p95 over the
/// repetition samples plus the run's metric snapshot, span aggregates, and
/// manifest.
///
/// Constructing the report enables global metric/span collection, so the
/// embedded snapshot covers everything the bench ran.
///
/// Setting PLDP_BENCH_EXPORTS to a list containing "prom" and/or "trace"
/// additionally writes BENCH_<name>.prom (Prometheus text exposition) and
/// BENCH_<name>.trace.json (Chrome trace_event JSON) next to the report.
class BenchReport {
 public:
  /// `bench_name` is the target name without the bench_ prefix
  /// ("micro_pcep" -> BENCH_micro_pcep.json).
  explicit BenchReport(const std::string& bench_name);

  /// Manifest parameters (profile, scale, dataset, ...).
  void AddParam(const std::string& key, const std::string& value);
  void AddParam(const std::string& key, double value);
  void AddParam(const std::string& key, uint64_t value);
  void AddParam(const std::string& key, int value);

  /// Appends one repetition sample (seconds) to `case_name`, creating the
  /// case on first use. Cases keep insertion order.
  void AddSample(const std::string& case_name, double seconds);
  void AddCase(const std::string& case_name,
               const std::vector<double>& seconds);
  /// Attaches an auxiliary scalar to a case (error, bytes/user,
  /// throughput, ...). Re-adding an existing key overwrites its value.
  void AddCaseStat(const std::string& case_name, const std::string& key,
                   double value);

  /// Where the report will land, honouring PLDP_BENCH_OUT_DIR.
  std::string OutputPath() const;

  /// Writes the JSON report; call once, after all cases are recorded.
  Status Write() const;

 private:
  struct Case {
    std::string name;
    std::vector<double> samples;
    std::vector<std::pair<std::string, double>> stats;
  };

  Case* GetCase(const std::string& case_name);

  std::string bench_name_;
  obs::RunManifest manifest_;
  std::vector<Case> cases_;
};

/// Times its scope and appends it as one repetition sample of `case_name`,
/// so converting an existing per-run loop is one line.
class ScopedSample {
 public:
  ScopedSample(BenchReport* report, std::string case_name)
      : report_(report), case_name_(std::move(case_name)) {}
  ~ScopedSample() {
    report_->AddSample(case_name_, timer_.ElapsedSeconds());
  }

  ScopedSample(const ScopedSample&) = delete;
  ScopedSample& operator=(const ScopedSample&) = delete;

 private:
  BenchReport* report_;
  std::string case_name_;
  Stopwatch timer_;
};

/// The paper's four privacy-specification settings, in Table II order:
/// (S1,E1), (S1,E2), (S2,E1), (S2,E2).
struct SpecSetting {
  SafeRegionDistribution safe_regions;
  EpsilonDistribution epsilons;

  std::string Name() const {
    return "(" + safe_regions.name + "," + epsilons.name + ")";
  }
};

std::vector<SpecSetting> AllSpecSettings();

/// Prints the profile banner every bench starts with.
void PrintProfileBanner(const char* bench_name, const BenchProfile& profile);

/// Runs `scheme` `runs` times with distinct seeds and returns the mean of
/// `metric(counts)` over the runs. Aborts the process on setup errors (bench
/// binaries are leaf programs). When `report` is non-null every run's wall
/// time lands in `case_name`, and the mean metric is attached as its
/// "metric" stat.
double MeanOverRuns(Scheme scheme, const SpatialTaxonomy& taxonomy,
                    const std::vector<UserRecord>& users, double beta,
                    int runs, uint64_t seed_base,
                    const std::function<double(const std::vector<double>&)>&
                        metric,
                    BenchReport* report = nullptr,
                    const std::string& case_name = "");

/// Shared driver for Figures 3-6: mean relative error of range queries of 6
/// growing sizes (q1 per dataset, x1.5 linear per step, `queries_per_size`
/// random rectangles each) for every scheme under every spec setting.
/// `bench_name` names the BENCH_<name>.json report ("fig3_range_road").
int RunRangeFigure(const char* bench_name, const char* figure_title,
                   const std::string& dataset_name);

}  // namespace bench
}  // namespace pldp

#endif  // PLDP_BENCH_COMMON_H_
