// Scrape-under-load cost of the live-introspection plane: two loopback
// epochs over identical cohorts, one with every observability surface off,
// one with the flight recorder + metrics registry enabled and an admin
// scraper (GET /metrics) plus a kStatsRequest poller hammering the daemon at
// ~10ms cadence while reports ingest. Reports/sec of both legs and the
// overhead fraction land in BENCH_net_introspection.json; the benchdiff gate
// classifies reports_per_sec as higher-is-better and scrape_overhead_frac as
// lower-is-better, so a scrape path that starts costing ingest throughput
// fails the diff.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "common.h"
#include "geo/taxonomy.h"
#include "net/admin.h"
#include "net/client.h"
#include "net/epoch_engine.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "protocol/client.h"
#include "protocol/messages.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace pldp {
namespace {

using net::NetClient;

struct Cohort {
  std::vector<PrivacySpec> specs;
  std::vector<CellId> cells;
};

SpatialTaxonomy MakeTaxonomy() {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, 16, 16}, 1, 1).value();
  return SpatialTaxonomy::Build(grid, 4).value();
}

Cohort MakeCohort(const SpatialTaxonomy& tax, size_t n, uint64_t seed) {
  Rng rng(seed);
  Cohort cohort;
  for (size_t i = 0; i < n; ++i) {
    const auto cell =
        static_cast<CellId>(rng.NextUint64(tax.grid().num_cells()));
    PrivacySpec spec;
    spec.safe_region = tax.AncestorAbove(
        tax.LeafNodeOfCell(cell), static_cast<uint32_t>(rng.NextUint64(3)));
    spec.epsilon = rng.Bernoulli(0.5) ? 0.5 : 1.0;
    cohort.specs.push_back(spec);
    cohort.cells.push_back(cell);
  }
  return cohort;
}

void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// One full loopback epoch; returns the report-phase wall seconds. With
/// `introspect` the flight recorder, the metrics registry, an admin HTTP
/// scraper, and a control-frame stats poller all run against the live
/// daemon for the whole phase.
double RunEpochLeg(const SpatialTaxonomy& tax, const Cohort& cohort,
                   uint64_t seed, bool introspect) {
  auto& recorder = obs::FlightRecorder::Global();
  auto& registry = obs::MetricsRegistry::Global();
  if (introspect) {
    recorder.Enable(65536);
    registry.set_enabled(true);
  } else {
    recorder.Disable();
    registry.set_enabled(false);
  }

  const size_t n = cohort.specs.size();
  net::EpochEngineOptions engine_options;
  engine_options.psda.seed = seed;
  net::EpochEngine engine(&tax, engine_options);
  net::NetServerOptions server_options;
  server_options.io_threads = 2;
  net::NetServer server(&engine, server_options);
  CheckOk(server.Start(), "server start");

  std::unique_ptr<net::AdminServer> admin;
  std::atomic<bool> stop{false};
  std::vector<std::thread> aux;
  if (introspect) {
    admin = std::make_unique<net::AdminServer>(
        net::AdminServerOptions{},
        [&server] { return net::RenderStatusJson(server.ServiceStats()); });
    CheckOk(admin->Start(), "admin start");
    const uint16_t admin_port = admin->port();
    aux.emplace_back([admin_port, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        (void)net::HttpGet("127.0.0.1", admin_port, "/metrics");
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
    const uint16_t port = server.port();
    aux.emplace_back([port, &stop] {
      NetClient poller;
      if (!poller.Connect("127.0.0.1", port).ok()) return;
      while (!stop.load(std::memory_order_acquire)) {
        if (!poller.FetchStats().ok()) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      poller.Close();
    });
  }

  NetClient conn;
  CheckOk(conn.Connect("127.0.0.1", server.port()), "connect");
  for (size_t i = 0; i < n; ++i) {
    SpecUploadMsg msg;
    msg.safe_region = cohort.specs[i].safe_region;
    msg.epsilon = cohort.specs[i].epsilon;
    CheckOk(conn.UploadSpec(i, msg).status(), "spec upload");
  }
  CheckOk(conn.SealSpecs(n).status(), "seal specs");

  std::vector<DeviceClient> devices;
  devices.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    devices.emplace_back(&tax, cohort.cells[i], cohort.specs[i],
                         SplitMix64(seed ^ (i + 1)));
  }

  Stopwatch ingest_timer;
  for (size_t i = 0; i < n; ++i) {
    const auto assignment = conn.FetchAssignment(i);
    CheckOk(assignment.status(), "assignment");
    const auto reply = devices[i].HandleRowAssignment(assignment->Serialize());
    CheckOk(reply.status(), "device report");
    CheckOk(
        conn.SubmitReport(i, ReportMsg::Parse(reply.value()).value()).status(),
        "report");
  }
  const double ingest_seconds = ingest_timer.ElapsedSeconds();

  CheckOk(conn.SealEpoch().status(), "seal epoch");
  CheckOk(conn.FetchEstimates().status(), "estimates");

  stop.store(true, std::memory_order_release);
  for (auto& t : aux) t.join();
  if (admin) admin->Stop();
  conn.Close();
  server.Stop();

  // BenchReport enabled collection at startup; keep the registry live after
  // a baseline leg so the embedded snapshot still accumulates.
  registry.set_enabled(true);
  recorder.Disable();
  return ingest_seconds;
}

int Run() {
  const BenchProfile profile = GetBenchProfile();
  bench::PrintProfileBanner("net_introspection", profile);
  const size_t n = static_cast<size_t>(
      std::max(400.0, 40000.0 * profile.scale));
  const uint64_t seed = 2016;

  bench::BenchReport report("net_introspection");
  report.AddParam("profile", profile.name);
  report.AddParam("users", static_cast<uint64_t>(n));
  report.AddParam("runs", profile.runs);

  const SpatialTaxonomy tax = MakeTaxonomy();
  const Cohort cohort = MakeCohort(tax, n, seed);

  // One untimed epoch absorbs cold-start costs (page faults, listener
  // setup, allocator warm-up) that would otherwise bias whichever leg
  // happens to run first.
  (void)RunEpochLeg(tax, cohort, seed + 9999, /*introspect=*/false);

  std::vector<double> base_rates;
  std::vector<double> intro_rates;
  for (int run = 0; run < profile.runs; ++run) {
    const double base_s =
        RunEpochLeg(tax, cohort, seed + run, /*introspect=*/false);
    const double intro_s =
        RunEpochLeg(tax, cohort, seed + run, /*introspect=*/true);
    report.AddSample("baseline", base_s);
    report.AddSample("introspected", intro_s);
    base_rates.push_back(static_cast<double>(n) / base_s);
    intro_rates.push_back(static_cast<double>(n) / intro_s);
    std::printf("run %d: baseline %.0f reports/s, introspected %.0f "
                "reports/s\n",
                run, base_rates.back(), intro_rates.back());
  }

  const double base = bench::Median(base_rates);
  const double intro = bench::Median(intro_rates);
  const double overhead = base > 0.0 ? (base - intro) / base : 0.0;
  report.AddCaseStat("baseline", "reports_per_sec", base);
  report.AddCaseStat("introspected", "reports_per_sec", intro);
  report.AddCaseStat("introspected", "scrape_overhead_frac", overhead);
  std::printf("median: baseline %.0f reports/s, introspected %.0f reports/s "
              "(overhead %.2f%%)\n",
              base, intro, overhead * 100.0);

  CheckOk(report.Write(), "bench report");
  std::printf("report written to %s\n", report.OutputPath().c_str());
  return 0;
}

}  // namespace
}  // namespace pldp

int main() { return pldp::Run(); }
