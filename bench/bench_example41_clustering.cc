// Reproduces Example 4.1: the analytical MAE bounds for keeping the user
// groups at R4 and R14 separate versus merging them, and verifies that the
// clustering algorithm (Algorithm 3) actually performs the merge.
//
// Note on constants: evaluating Theorem 4.5 exactly as stated gives 3,860 vs
// 2,770 where the paper prints 4,637 vs 3,327 - a uniform x1.2012 factor, so
// the paper evidently used a slightly different constant. The claim under
// test is the ratio (merging reduces the bound by ~28%), which matches to
// three decimals.

#include <cstdio>

#include "common.h"
#include "core/clustering.h"
#include "core/error_model.h"
#include "geo/taxonomy.h"
#include "util/logging.h"

int main() {
  using namespace pldp;
  bench::BenchReport report("example41_clustering");

  std::printf("=== Example 4.1: merge vs separate ===\n\n");
  const double beta = 0.2;
  const double vs4 = 60000 * PrivacyFactorTerm(1.0);
  const double vs14 = 20000 * PrivacyFactorTerm(1.0);

  const double err4 = PcepErrorBound(beta / 2, 60000, 20, vs4);
  const double err14 = PcepErrorBound(beta / 2, 20000, 6, vs14);
  const double separate = err4 + err14;
  const double merged = PcepErrorBound(beta, 80000, 20, vs4 + vs14);

  std::printf("separate protocols: err(R4)=%.0f + err(R14)=%.0f = %.0f "
              "(paper: 4637)\n",
              err4, err14, separate);
  std::printf("merged protocol:    err(R4 u R14)       = %.0f (paper: 3327)\n",
              merged);
  std::printf("reduction ratio: %.4f (paper: %.4f)\n\n", merged / separate,
              3327.0 / 4637.0);

  // Now let Algorithm 3 discover the merge on a real taxonomy: an outer node
  // of 16 cells with an inner child of 4 cells (same shape, |R| 16 vs 4).
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, 8, 8}, 1, 1).value();
  const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();
  const NodeId outer = taxonomy.children(taxonomy.root())[0];
  const NodeId inner = taxonomy.children(outer)[1];

  auto make_group = [](NodeId region, uint64_t n) {
    UserGroup group;
    group.region = region;
    group.members.resize(n);
    group.varsigma = static_cast<double>(n) * PrivacyFactorTerm(1.0);
    return group;
  };
  ClusteringOptions options;
  options.beta = beta;
  Stopwatch timer;
  const auto result =
      ClusterUserGroups(taxonomy,
                        {make_group(outer, 60000), make_group(inner, 20000)},
                        options);
  report.AddSample("cluster_example41", timer.ElapsedSeconds());
  PLDP_CHECK(result.ok()) << result.status();
  std::printf("Algorithm 3 on the same shape (|R|=16 over |R|=4):\n");
  std::printf("  merges performed: %u (expected 1)\n", result->merges);
  std::printf("  objective: %.0f -> %.0f\n", result->initial_max_path_error,
              result->final_max_path_error);
  std::printf("  final clusters: %zu\n", result->clusters.size());
  report.AddCaseStat("cluster_example41", "merges", result->merges);
  report.AddCaseStat("cluster_example41", "reduction_ratio",
                     merged / separate);
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
