// Extension: the UG (uniform grid) baseline the paper considered and
// dropped. Section V-A: "we could adapt the grid-based approaches in [20]
// by using our PCEP protocol. However, their performance heavily relies on
// the proper selection of numbers of grids in each level. Their guidelines
// based on the Laplace mechanism normally give poor results for PCEP."
//
// This bench substantiates that: UG with the Laplace-tuned guideline
// (c0 = 10) against PSDA and kdTree, plus a c0 sweep showing the
// sensitivity the paper warns about.

#include <cstdio>

#include "baselines/uniform_grid.h"
#include "common.h"
#include "core/psda.h"
#include "eval/metrics.h"
#include "util/logging.h"

int main() {
  using namespace pldp;
  using namespace pldp::bench;

  BenchReport report("ext_grid_baseline");
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner("Extension: uniform-grid (UG) baseline", profile);

  std::printf("(1) KL divergence, UG/AG vs PSDA/kdTree, (S1,E2)\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "Dataset", "PSDA", "kdTree",
              "UG", "AG");
  for (const std::string& name : BenchmarkDatasetNames()) {
    const auto setup =
        PrepareExperiment(name, DatasetScale(profile, name), 2016);
    PLDP_CHECK(setup.ok()) << setup.status();
    const auto users = AssignSpecs(setup->taxonomy, setup->cells,
                                   SafeRegionsS1(), EpsilonsE2(), 83);
    PLDP_CHECK(users.ok()) << users.status();

    double kl_psda = 0.0, kl_kd = 0.0, kl_ug = 0.0, kl_ag = 0.0;
    for (int run = 0; run < profile.runs; ++run) {
      Stopwatch timer;
      const uint64_t seed = 5000 + 1000 * run;
      kl_psda += KlDivergence(
                     setup->true_histogram,
                     RunScheme(Scheme::kPsda, setup->taxonomy, users.value(),
                               0.1, seed)
                         .value())
                     .value();
      kl_kd += KlDivergence(
                   setup->true_histogram,
                   RunScheme(Scheme::kKdTree, setup->taxonomy, users.value(),
                             0.1, seed)
                       .value())
                   .value();
      UniformGridBaselineOptions ug_options;
      ug_options.seed = seed;
      const auto ug =
          RunUniformGridBaseline(setup->taxonomy, users.value(), ug_options);
      PLDP_CHECK(ug.ok()) << ug.status();
      kl_ug += KlDivergence(setup->true_histogram, ug.value()).value();
      AdaptiveGridBaselineOptions ag_options;
      ag_options.seed = seed;
      const auto ag =
          RunAdaptiveGridBaseline(setup->taxonomy, users.value(), ag_options);
      PLDP_CHECK(ag.ok()) << ag.status();
      kl_ag += KlDivergence(setup->true_histogram, ag.value()).value();
      report.AddSample("four_schemes/" + name, timer.ElapsedSeconds());
    }
    report.AddCaseStat("four_schemes/" + name, "kl_psda",
                       kl_psda / profile.runs);
    report.AddCaseStat("four_schemes/" + name, "kl_kdtree",
                       kl_kd / profile.runs);
    report.AddCaseStat("four_schemes/" + name, "kl_ug", kl_ug / profile.runs);
    report.AddCaseStat("four_schemes/" + name, "kl_ag", kl_ag / profile.runs);
    std::printf("%-10s %10.4f %10.4f %10.4f %10.4f\n", name.c_str(),
                kl_psda / profile.runs, kl_kd / profile.runs,
                kl_ug / profile.runs, kl_ag / profile.runs);
  }

  std::printf("\n(2) UG sensitivity to the guideline constant (landmark)\n");
  std::printf("%8s %12s\n", "c0", "KL");
  {
    const auto setup =
        PrepareExperiment("landmark", DatasetScale(profile, "landmark"), 2016);
    PLDP_CHECK(setup.ok()) << setup.status();
    const auto users = AssignSpecs(setup->taxonomy, setup->cells,
                                   SafeRegionsS1(), EpsilonsE2(), 83);
    PLDP_CHECK(users.ok()) << users.status();
    for (const double c0 : {1.0, 10.0, 100.0, 1000.0}) {
      const std::string case_name =
          "c0_sweep/c0_" + std::to_string(static_cast<int>(c0));
      double kl = 0.0;
      for (int run = 0; run < profile.runs; ++run) {
        UniformGridBaselineOptions options;
        options.guideline_c0 = c0;
        options.seed = 8000 + 1000 * run;
        Stopwatch timer;
        const auto ug =
            RunUniformGridBaseline(setup->taxonomy, users.value(), options);
        report.AddSample(case_name, timer.ElapsedSeconds());
        PLDP_CHECK(ug.ok()) << ug.status();
        kl += KlDivergence(setup->true_histogram, ug.value()).value();
      }
      report.AddCaseStat(case_name, "kl", kl / profile.runs);
      std::printf("%8.0f %12.4f\n", c0, kl / profile.runs);
    }
  }
  std::printf("\n(the strong c0 dependence is why the paper excludes the "
              "grid methods from its comparison)\n");
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
