// Micro-benchmarks for the PCEP building blocks (Section IV-A complexity):
// O(1) client-side perturbation, row generation, and the server-side decode.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "core/local_randomizer.h"
#include "core/pcep.h"
#include "core/pcep_decode.h"
#include "core/pcep_encode.h"
#include "core/sign_matrix.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace pldp {
namespace {

void BM_LocalRandomize(benchmark::State& state) {
  Rng rng(1);
  const double epsilon = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LocalRandomize(true, 1 << 20, epsilon, &rng).value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalRandomize)->Arg(25)->Arg(100);

void BM_SignMatrixRowWord(benchmark::State& state) {
  const SignMatrix matrix(7, 1 << 20, 4096);
  uint64_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matrix.RowWord(row, row & 63));
    ++row;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SignMatrixRowWord);

void BM_SignMatrixRow(benchmark::State& state) {
  const uint64_t width = state.range(0);
  const SignMatrix matrix(7, 1 << 20, width);
  uint64_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matrix.Row(row++));
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_SignMatrixRow)->Arg(64)->Arg(1024)->Arg(16384);

void BM_PcepClientPath(benchmark::State& state) {
  // The full on-device work: pick own bit from the row, randomize it.
  const uint64_t width = state.range(0);
  const SignMatrix matrix(7, 1 << 16, width);
  const BitVector row = matrix.Row(42);
  Rng rng(3);
  uint64_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LocalRandomizeRow(row, index++ % width, 1 << 16, 1.0, &rng).value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PcepClientPath)->Arg(64)->Arg(4096);

/// Decode-rate counters: rows/s over the touched-row stream and the
/// effective GB/s of count updates (8 bytes per decoded cell). Both are
/// named *throughput so pldp_benchdiff treats them as higher-is-better.
void SetDecodeThroughput(benchmark::State& state, const PcepServer& server) {
  const auto rows = static_cast<double>(server.num_touched_rows());
  const double cells = rows * static_cast<double>(server.tau_size());
  state.counters["decode_rows_throughput"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * rows,
      benchmark::Counter::kIsRate);
  state.counters["decode_gb_throughput"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * cells * 8.0 / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_PcepServerDecode(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const uint64_t tau = state.range(1);
  PcepParams params;
  PcepServer server = PcepServer::Create(tau, n, params).value();
  Rng rng(5);
  for (uint64_t i = 0; i < n; ++i) {
    server.Accumulate(server.AssignRow(&rng), rng.Bernoulli(0.5) ? 3.0 : -3.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Estimate());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["m"] = static_cast<double>(server.m());
  SetDecodeThroughput(state, server);
}
BENCHMARK(BM_PcepServerDecode)
    ->Args({1000, 64})
    ->Args({10000, 64})
    ->Args({10000, 1024})
    ->Args({50000, 4096})
    ->Args({50000, 16384});

/// Per-kernel decode cases at the reference configuration (n=50k,
/// |tau|=16384), forced through the PLDP_DECODE_KERNEL override so the full
/// Estimate path (gather, scratch, counters) is what gets measured — the
/// same A/B a benchdiff driver runs with the env set externally. The cases
/// are named decode_scalar / decode_avx2 in BENCH_micro_pcep.json so
/// pldp_benchdiff gates both kernels' decode_rows_throughput /
/// decode_gb_throughput independently.
const PcepServer& SharedDecodeServer() {
  static const PcepServer* server = [] {
    const uint64_t n = 50000;
    const uint64_t tau = 16384;
    PcepParams params;
    auto* loaded = new PcepServer(PcepServer::Create(tau, n, params).value());
    Rng rng(5);
    for (uint64_t i = 0; i < n; ++i) {
      loaded->Accumulate(loaded->AssignRow(&rng),
                         rng.Bernoulli(0.5) ? 3.0 : -3.0);
    }
    return loaded;
  }();
  return *server;
}

/// Seconds per Estimate() of the scalar case, stashed so the avx2 case
/// (registered and therefore run afterwards) can record the measured
/// scalar-vs-SIMD ratio as its speedup_vs_scalar stat.
double g_scalar_decode_seconds = 0.0;

void RunDecodeKernelCase(benchmark::State& state, DecodeKernel kernel) {
  if (!DecodeKernelAvailable(kernel)) {
    state.SkipWithError("kernel unavailable on this host/build");
    return;
  }
  setenv("PLDP_DECODE_KERNEL", DecodeKernelName(kernel), 1);
  ResetDecodeKernelForTesting();
  const PcepServer& server = SharedDecodeServer();
  Stopwatch timer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Estimate());
  }
  const double seconds_per_iter =
      timer.ElapsedSeconds() / static_cast<double>(state.iterations());
  unsetenv("PLDP_DECODE_KERNEL");
  ResetDecodeKernelForTesting();

  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(server.num_touched_rows()));
  SetDecodeThroughput(state, server);
  if (kernel == DecodeKernel::kScalar) {
    g_scalar_decode_seconds = seconds_per_iter;
  } else if (g_scalar_decode_seconds > 0.0 && seconds_per_iter > 0.0) {
    state.counters["speedup_vs_scalar"] =
        g_scalar_decode_seconds / seconds_per_iter;
  }
}

void BM_PcepDecodeScalar(benchmark::State& state) {
  RunDecodeKernelCase(state, DecodeKernel::kScalar);
}
BENCHMARK(BM_PcepDecodeScalar)->Name("decode_scalar");

void BM_PcepDecodeAvx2(benchmark::State& state) {
  RunDecodeKernelCase(state, DecodeKernel::kAvx2);
}
BENCHMARK(BM_PcepDecodeAvx2)->Name("decode_avx2");

void BM_PcepDecodeAvx512(benchmark::State& state) {
  RunDecodeKernelCase(state, DecodeKernel::kAvx512);
}
BENCHMARK(BM_PcepDecodeAvx512)->Name("decode_avx512");

/// Shared input for the forced-kernel encode cases: the reference
/// configuration (n=50k users, |tau|=16384, m=2^16) with mixed epsilons, the
/// same shape RunPcepCollection feeds EncodeUserRange per chunk.
struct EncodeFixture {
  uint64_t m = 1 << 16;
  SignMatrix matrix{7, 1 << 16, 16384};
  SeedSchedule schedule{11, PcepSeeds::kClientSeedStride};
  std::vector<PcepUser> users;
  std::vector<uint64_t> rows;
  std::vector<double> out;
};

EncodeFixture& SharedEncodeFixture() {
  static EncodeFixture* fixture = [] {
    auto* f = new EncodeFixture;
    const uint64_t n = 50000;
    const uint64_t tau = 16384;
    Rng rng(5);
    f->users.reserve(n);
    f->rows.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      f->users.push_back({static_cast<uint32_t>(rng.NextUint64(tau)),
                          rng.Bernoulli(0.5) ? 0.25 : 1.0});
      f->rows.push_back(rng.NextUint64(f->m));
    }
    f->out.assign(n, 0.0);
    return f;
  }();
  return *fixture;
}

/// Seconds per EncodeUserRange of the scalar case, stashed so the avx2 case
/// can record the measured scalar-vs-SIMD ratio as speedup_vs_scalar.
double g_scalar_encode_seconds = 0.0;

/// Per-kernel encode cases forced through PLDP_ENCODE_KERNEL, measuring the
/// full EncodeUserRange path. encode_scalar runs the sequential reference
/// (real SignAt + LocalRandomize per user, exp() included); encode_avx2
/// runs the batched closed-form SIMD path — so speedup_vs_scalar is the
/// speedup of batched SIMD encode over the sequential path it replaced.
/// Named encode_scalar / encode_avx2 in BENCH_micro_pcep.json;
/// encode_users_per_sec is the stat the benchdiff gate classifies
/// (higher-is-better via the per_sec token).
void RunEncodeKernelCase(benchmark::State& state, EncodeKernel kernel) {
  if (!EncodeKernelAvailable(kernel)) {
    state.SkipWithError("kernel unavailable on this host/build");
    return;
  }
  setenv("PLDP_ENCODE_KERNEL", EncodeKernelName(kernel), 1);
  ResetEncodeKernelForTesting();
  EncodeFixture& fixture = SharedEncodeFixture();
  Stopwatch timer;
  for (auto _ : state) {
    const Status status = EncodeUserRange(
        fixture.matrix, fixture.m, fixture.schedule, fixture.users.data(),
        fixture.rows.data(), 0, fixture.users.size(), nullptr,
        fixture.out.data());
    if (!status.ok()) {
      state.SkipWithError(status.message().c_str());
      break;
    }
    benchmark::DoNotOptimize(fixture.out.data());
    benchmark::ClobberMemory();
  }
  const double seconds_per_iter =
      timer.ElapsedSeconds() / static_cast<double>(state.iterations());
  unsetenv("PLDP_ENCODE_KERNEL");
  ResetEncodeKernelForTesting();

  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixture.users.size()));
  state.counters["encode_users_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(fixture.users.size()),
      benchmark::Counter::kIsRate);
  if (kernel == EncodeKernel::kScalar) {
    g_scalar_encode_seconds = seconds_per_iter;
  } else if (g_scalar_encode_seconds > 0.0 && seconds_per_iter > 0.0) {
    state.counters["speedup_vs_scalar"] =
        g_scalar_encode_seconds / seconds_per_iter;
  }
}

void BM_PcepEncodeScalar(benchmark::State& state) {
  RunEncodeKernelCase(state, EncodeKernel::kScalar);
}
BENCHMARK(BM_PcepEncodeScalar)->Name("encode_scalar");

void BM_PcepEncodeAvx2(benchmark::State& state) {
  RunEncodeKernelCase(state, EncodeKernel::kAvx2);
}
BENCHMARK(BM_PcepEncodeAvx2)->Name("encode_avx2");

void BM_PcepServerDecodeParallel(benchmark::State& state) {
  const uint64_t n = 50000;
  const uint64_t tau = 16384;
  PcepParams params;
  PcepServer server = PcepServer::Create(tau, n, params).value();
  Rng rng(5);
  for (uint64_t i = 0; i < n; ++i) {
    server.Accumulate(server.AssignRow(&rng), rng.Bernoulli(0.5) ? 3.0 : -3.0);
  }
  const unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.EstimateParallel(threads));
  }
  state.SetItemsProcessed(state.iterations() * n);
  SetDecodeThroughput(state, server);
}
BENCHMARK(BM_PcepServerDecodeParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_RunPcepEndToEnd(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const uint64_t tau = state.range(1);
  std::vector<PcepUser> users;
  users.reserve(n);
  Rng rng(9);
  for (uint64_t i = 0; i < n; ++i) {
    users.push_back({static_cast<uint32_t>(rng.NextUint64(tau)), 1.0});
  }
  PcepParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPcep(users, tau, params).value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RunPcepEndToEnd)->Args({10000, 64})->Args({50000, 1024});

}  // namespace
}  // namespace pldp
