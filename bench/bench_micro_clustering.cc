// Micro-benchmark for Algorithm 3: clustering runtime versus the number of
// user groups (the paper's complexity analysis is O(l * k^2 * h^2)).

#include <benchmark/benchmark.h>

#include "core/clustering.h"
#include "core/error_model.h"
#include "geo/taxonomy.h"
#include "util/random.h"

namespace pldp {
namespace {

std::vector<UserGroup> RandomGroups(const SpatialTaxonomy& taxonomy,
                                    size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<UserGroup> groups;
  std::vector<bool> used(taxonomy.num_nodes(), false);
  while (groups.size() < count) {
    const auto node =
        static_cast<NodeId>(rng.NextUint64(taxonomy.num_nodes()));
    if (used[node]) continue;
    used[node] = true;
    UserGroup group;
    group.region = node;
    group.members.resize(100 + rng.NextUint64(20000));
    group.varsigma =
        static_cast<double>(group.members.size()) * PrivacyFactorTerm(1.0);
    groups.push_back(std::move(group));
  }
  return groups;
}

void BM_ClusterUserGroups(benchmark::State& state) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, 32, 32}, 1, 1).value();
  const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();
  const size_t k = state.range(0);
  const auto groups = RandomGroups(taxonomy, k, 1234);
  ClusteringOptions options;
  uint32_t merges = 0;
  for (auto _ : state) {
    const auto result = ClusterUserGroups(taxonomy, groups, options).value();
    merges = result.merges;
    benchmark::DoNotOptimize(result);
  }
  state.counters["merges"] = merges;
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_ClusterUserGroups)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_MaxPathError(benchmark::State& state) {
  const UniformGrid grid =
      UniformGrid::Create(BoundingBox{0, 0, 32, 32}, 1, 1).value();
  const SpatialTaxonomy taxonomy = SpatialTaxonomy::Build(grid, 4).value();
  const auto groups = RandomGroups(taxonomy, state.range(0), 99);
  const auto trivial =
      TrivialClusters(taxonomy, groups, ClusteringOptions()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MaxPathError(taxonomy, trivial.clusters, 0.1));
  }
}
BENCHMARK(BM_MaxPathError)->Arg(32)->Arg(256);

}  // namespace
}  // namespace pldp
