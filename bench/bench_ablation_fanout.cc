// Ablation: taxonomy fanout. Section V: "For each dataset, we construct its
// spatial taxonomy by using a fixed fanout of 4. We also tested with a wide
// range of other fanouts and observed similar results." This bench
// reproduces that check: PSDA KL under fanouts 4, 9, 16 on two datasets.

#include <cstdio>

#include "common.h"
#include "core/psda.h"
#include "eval/metrics.h"
#include "util/logging.h"

int main() {
  using namespace pldp;
  using namespace pldp::bench;

  BenchReport report("ablation_fanout");
  const BenchProfile profile = GetBenchProfile();
  PrintProfileBanner("Ablation: taxonomy fanout", profile);

  std::printf("%-10s %8s %10s %10s %12s %10s\n", "Dataset", "fanout",
              "height", "nodes", "KL(PSDA)", "MAE");
  for (const std::string& name : {std::string("road"),
                                  std::string("landmark")}) {
    for (const uint32_t fanout : {4u, 9u, 16u}) {
      const auto setup = PrepareExperiment(
          name, DatasetScale(profile, name), 2016, fanout);
      PLDP_CHECK(setup.ok()) << setup.status();
      const auto users = AssignSpecs(setup->taxonomy, setup->cells,
                                     SafeRegionsS1(), EpsilonsE2(), 19);
      PLDP_CHECK(users.ok()) << users.status();

      const std::string case_name =
          name + "/fanout_" + std::to_string(fanout);
      double kl = 0.0, mae = 0.0;
      for (int run = 0; run < profile.runs; ++run) {
        PsdaOptions options;
        options.seed = 12000 + run;
        Stopwatch timer;
        const auto result = RunPsda(setup->taxonomy, users.value(), options);
        report.AddSample(case_name, timer.ElapsedSeconds());
        PLDP_CHECK(result.ok()) << result.status();
        kl += KlDivergence(setup->true_histogram, result->counts).value();
        mae += MaxAbsoluteError(setup->true_histogram, result->counts).value();
      }
      report.AddCaseStat(case_name, "kl", kl / profile.runs);
      report.AddCaseStat(case_name, "mae", mae / profile.runs);
      std::printf("%-10s %8u %10u %10zu %12.4f %10.1f\n", name.c_str(),
                  fanout, setup->taxonomy.height(),
                  setup->taxonomy.num_nodes(), kl / profile.runs,
                  mae / profile.runs);
    }
  }
  std::printf("\n(same order of magnitude across fanouts, as the paper "
              "reports; larger fanouts shorten the taxonomy, so the same "
              "S-distribution maps users to much coarser safe regions, "
              "which accounts for the residual drift)\n");
  const Status written = report.Write();
  PLDP_CHECK(written.ok()) << written.ToString();
  return 0;
}
