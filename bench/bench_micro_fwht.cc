// Micro-benchmarks for the fast Walsh-Hadamard transform behind the HR
// oracle's decode (core/fwht.h): forced-kernel A/B at the HR-relevant sizes
// m in {2^12, 2^16, 2^20}, through the PLDP_FWHT_KERNEL override so the full
// dispatch path is what gets measured — the same A/B a benchdiff driver runs
// with the env set externally.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>

#include "core/fwht.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace pldp {
namespace {

/// Fastest observed transform (seconds) of the scalar case at each size,
/// stashed so the avx2 case (registered and therefore run afterwards) can
/// record the measured scalar-vs-SIMD ratio as its speedup_vs_scalar stat —
/// the number the oracle-matrix gate reads (target: >= 3x at m = 2^16).
/// Min-of-iterations rather than mean: on a shared host the mean folds in
/// scheduler preemption, which hits whichever case is unlucky; the min is
/// the reproducible hardware-speed figure for both sides of the A/B.
std::map<size_t, double>& ScalarMinSecondsBySize() {
  static auto* seconds = new std::map<size_t, double>();
  return *seconds;
}

/// 64-byte-aligned buffer, matching the alignment the decode path allocates
/// for its accumulator. A 16-byte-offset buffer costs the AVX2 kernel up to
/// 40% (every 32-byte lane load splits across cache lines), so an unaligned
/// benchmark buffer would measure the allocator lottery, not the kernel.
std::unique_ptr<double[], decltype(&std::free)> AlignedBuffer(size_t n) {
  return {static_cast<double*>(std::aligned_alloc(64, n * sizeof(double))),
          &std::free};
}

/// Each case uses manual timing: only the transform itself is on the clock.
/// The in-place FWHT scales values by n every pass, so repeated transforms
/// overflow to inf after a few dozen reps and the kernel would be measured
/// on non-finite arithmetic; the untimed normalize below keeps the data
/// finite without polluting the A/B.
void RunFwhtKernelCase(benchmark::State& state, FwhtKernel kernel) {
  if (!FwhtKernelAvailable(kernel)) {
    state.SkipWithError("kernel unavailable on this host/build");
    return;
  }
  setenv("PLDP_FWHT_KERNEL", FwhtKernelName(kernel), 1);
  ResetFwhtKernelForTesting();

  const size_t n = static_cast<size_t>(state.range(0));
  auto data = AlignedBuffer(n);
  Rng rng(n + 17);
  for (size_t i = 0; i < n; ++i) data[i] = rng.NextDouble() - 0.5;
  const double inv_n = 1.0 / static_cast<double>(n);

  double min_seconds = 0.0;
  for (auto _ : state) {
    Stopwatch timer;
    Fwht(data.get(), n);
    const double seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
    if (min_seconds == 0.0) {
      min_seconds = seconds;
    } else {
      min_seconds = std::min(min_seconds, seconds);
    }
    for (size_t i = 0; i < n; ++i) data[i] *= inv_n;  // untimed: keep finite
    benchmark::DoNotOptimize(data.get());
  }
  unsetenv("PLDP_FWHT_KERNEL");
  ResetFwhtKernelForTesting();

  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.counters["cells_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
  if (kernel == FwhtKernel::kScalar) {
    double& stash = ScalarMinSecondsBySize()[n];
    stash = stash == 0.0 ? min_seconds : std::min(stash, min_seconds);
  } else {
    const auto it = ScalarMinSecondsBySize().find(n);
    if (it != ScalarMinSecondsBySize().end() && it->second > 0.0 &&
        min_seconds > 0.0) {
      state.counters["speedup_vs_scalar"] = it->second / min_seconds;
    }
  }
}

void BM_FwhtScalar(benchmark::State& state) {
  RunFwhtKernelCase(state, FwhtKernel::kScalar);
}
BENCHMARK(BM_FwhtScalar)
    ->Name("fwht_scalar")
    ->Arg(1 << 12)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->UseManualTime();

void BM_FwhtAvx2(benchmark::State& state) {
  RunFwhtKernelCase(state, FwhtKernel::kAvx2);
}
BENCHMARK(BM_FwhtAvx2)
    ->Name("fwht_avx2")
    ->Arg(1 << 12)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->UseManualTime();

}  // namespace
}  // namespace pldp
